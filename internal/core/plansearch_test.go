package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// loopTestbed builds a daemon-style shard: engine, cluster, runtime,
// scheduler and a running sim.Loop, with off-loop plan search enabled when
// workers > 0. The cleanup drains the loop and stops the workers.
func loopTestbed(t *testing.T, maxConcurrent, workers int) (*cluster.Cluster, *Scheduler, *sim.Loop) {
	t.Helper()
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	cl.AddVM("vm1", hardware.NDv4SKUName, false)
	rt, err := New(Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(se, rt, maxConcurrent)
	loop := sim.NewLoop(se)
	if workers > 0 {
		s.EnablePlanSearch(loop, workers)
	}
	go loop.Run()
	t.Cleanup(func() {
		loop.Close()
		s.StopPlanSearch()
	})
	return cl, s, loop
}

// submitOnLoop posts a submission into the loop and returns its handle.
func submitOnLoop(t *testing.T, loop *sim.Loop, s *Scheduler, tenant string, job workflow.Job) *Handle {
	t.Helper()
	var h *Handle
	var err error
	done := make(chan struct{})
	if !loop.Post(func() {
		h, err = s.Submit(tenant, job, SubmitOptions{RelaxFloor: true, KeepEngines: true})
		close(done)
	}) {
		t.Fatal("loop closed")
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// waitDone blocks until the handle settles (via a handle callback posted from
// the loop goroutine).
func waitDone(t *testing.T, loop *sim.Loop, h *Handle) {
	t.Helper()
	done := make(chan struct{})
	if !loop.Post(func() { h.OnDone(func(*Handle) { close(done) }) }) {
		t.Fatal("loop closed")
	}
	<-done
}

// distinctJob returns the i-th structurally-distinct newsfeed job.
func distinctJob(i int) workflow.Job {
	return workflow.Job{
		Description: fmt.Sprintf("Generate social media newsfeed variant %d", i),
		Inputs: []workflow.Input{
			{Name: fmt.Sprintf("user-%d", i), Kind: workflow.InputUser},
			{Name: "cats", Kind: workflow.InputTopic,
				Attrs: map[string]float64{"queries": float64(2 + i%3)}},
		},
		Constraint: workflow.MinLatency,
		MinQuality: 0.05 + float64(i)*1e-9,
	}
}

// TestParallelAdmissionMatchesSerial runs the same burst through a serial
// scheduler and one with off-loop plan search, and asserts every job
// completes with the identical plan: optimistic snapshot commit must be
// bit-stable with inline planning.
func TestParallelAdmissionMatchesSerial(t *testing.T) {
	const jobs = 12
	run := func(workers int) []map[string]string {
		_, s, loop := loopTestbed(t, 4, workers)
		handles := make([]*Handle, jobs)
		for i := 0; i < jobs; i++ {
			handles[i] = submitOnLoop(t, loop, s, fmt.Sprintf("t%d", i%3), distinctJob(i))
		}
		decisions := make([]map[string]string, jobs)
		for i, h := range handles {
			waitDone(t, loop, h)
			if h.Status() != JobDone {
				t.Fatalf("workers=%d job %d: status %v err %v", workers, i, h.Status(), h.Err())
			}
			decisions[i] = h.Report().Decisions
		}
		return decisions
	}
	serial := run(0)
	parallel := run(2)
	for i := range serial {
		if len(serial[i]) != len(parallel[i]) {
			t.Fatalf("job %d: decision counts differ: %v vs %v", i, serial[i], parallel[i])
		}
		for cap, d := range serial[i] {
			if parallel[i][cap] != d {
				t.Errorf("job %d capability %s: serial %q parallel %q", i, cap, d, parallel[i][cap])
			}
		}
	}
}

// TestSingleflightDedupsIdenticalBursts submits a burst of identical jobs and
// asserts exactly one plan search ran, with the rest joining it (or probing
// the cache it populated).
func TestSingleflightDedupsIdenticalBursts(t *testing.T) {
	const jobs = 8
	_, s, loop := loopTestbed(t, 2, 2)
	job := distinctJob(0)
	handles := make([]*Handle, jobs)
	// One posted closure submits the whole burst, so every submission
	// dispatches before the first search can commit — the singleflight
	// window is guaranteed open.
	done := make(chan struct{})
	if !loop.Post(func() {
		for i := range handles {
			h, err := s.Submit(fmt.Sprintf("t%d", i%4), job, SubmitOptions{RelaxFloor: true, KeepEngines: true})
			if err != nil {
				t.Error(err)
			}
			handles[i] = h
		}
		close(done)
	}) {
		t.Fatal("loop closed")
	}
	<-done
	for i, h := range handles {
		waitDone(t, loop, h)
		if h.Status() != JobDone {
			t.Fatalf("job %d: status %v err %v", i, h.Status(), h.Err())
		}
	}
	var st SchedulerStats
	statsDone := make(chan struct{})
	loop.Post(func() { st = s.Stats(); close(statsDone) })
	<-statsDone
	if st.PlanSearches != 1 {
		t.Errorf("plan searches = %d, want 1 (singleflight)", st.PlanSearches)
	}
	if st.SingleflightHits != jobs-1 {
		t.Errorf("singleflight hits = %d, want %d", st.SingleflightHits, jobs-1)
	}
	if st.PlanConflicts != 0 {
		t.Errorf("conflicts = %d, want 0", st.PlanConflicts)
	}
	if st.PlanSearchInflight != 0 {
		t.Errorf("inflight = %d after quiescence", st.PlanSearchInflight)
	}
}

// TestPlanConflictReplansInline invalidates an in-flight search
// deterministically: the capacity class changes (AddVM) in the same posted
// closure that submitted the job, i.e. after dispatch captured its snapshot
// but necessarily before the commit post runs. The commit must count a
// conflict and the job must still complete via inline re-planning.
func TestPlanConflictReplansInline(t *testing.T) {
	cl, s, loop := loopTestbed(t, 2, 1)
	var h *Handle
	done := make(chan struct{})
	if !loop.Post(func() {
		var err error
		h, err = s.Submit("alice", distinctJob(1), SubmitOptions{RelaxFloor: true, KeepEngines: true})
		if err != nil {
			t.Error(err)
		}
		cl.AddVM("late-vm", hardware.NDv4SKUName, false)
		close(done)
	}) {
		t.Fatal("loop closed")
	}
	<-done
	waitDone(t, loop, h)
	if h.Status() != JobDone || h.Err() != nil {
		t.Fatalf("status %v err %v, want done", h.Status(), h.Err())
	}
	var st SchedulerStats
	statsDone := make(chan struct{})
	loop.Post(func() { st = s.Stats(); close(statsDone) })
	<-statsDone
	if st.PlanConflicts != 1 {
		t.Errorf("conflicts = %d, want 1 (stale capacity generation)", st.PlanConflicts)
	}
	if st.Completed != 1 {
		t.Errorf("completed = %d, want 1", st.Completed)
	}
}

// TestCancelWhileSearchInFlight cancels a job in the same closure that
// submitted it — before its plan search can possibly commit. The cancel must
// take effect immediately, the late commit must skip the dead handle, and the
// loop must still drain cleanly (the search's hold resolves).
func TestCancelWhileSearchInFlight(t *testing.T) {
	_, s, loop := loopTestbed(t, 2, 1)
	var h *Handle
	var canceled bool
	done := make(chan struct{})
	if !loop.Post(func() {
		var err error
		h, err = s.Submit("alice", distinctJob(2), SubmitOptions{RelaxFloor: true, KeepEngines: true})
		if err != nil {
			t.Error(err)
		}
		canceled = h.Cancel()
		close(done)
	}) {
		t.Fatal("loop closed")
	}
	<-done
	if !canceled {
		t.Fatal("Cancel on a queued (search-in-flight) job returned false")
	}
	if h.Status() != JobCanceled || !errors.Is(h.Err(), ErrCanceled) {
		t.Fatalf("status %v err %v, want canceled", h.Status(), h.Err())
	}
	// Drain: Loop.Close blocks until the search's hold resolves — a stuck
	// hold would deadlock the test here.
	loop.Close()
	s.StopPlanSearch()
	if st := s.Stats(); st.Canceled != 1 || st.Completed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDrainWaitsForInFlightSearch closes the loop immediately after a
// submission whose plan search is still on a worker: drain-on-Close must wait
// for the search to commit and the job to run to completion, not strand it.
func TestDrainWaitsForInFlightSearch(t *testing.T) {
	_, s, loop := loopTestbed(t, 2, 1)
	h := submitOnLoop(t, loop, s, "alice", distinctJob(3))
	loop.Close()
	s.StopPlanSearch()
	if h.Status() != JobDone || h.Err() != nil {
		t.Fatalf("after drain: status %v err %v, want done", h.Status(), h.Err())
	}
}

// TestStalePreparedPlanReplansAtStart covers the queue-wait window: a
// submission whose prepared plan came straight from the caches (probe hit,
// generation-stamped) is followed — in the same posted closure, i.e. before
// the deferred pump can admit it — by a capacity-class change. At start the
// stamp no longer matches, so the job must re-plan inline (counted as a
// conflict) instead of launching the stale plan.
func TestStalePreparedPlanReplansAtStart(t *testing.T) {
	cl, s, loop := loopTestbed(t, 2, 1)
	job := distinctJob(4)
	warm := submitOnLoop(t, loop, s, "alice", job)
	waitDone(t, loop, warm)
	if warm.Status() != JobDone {
		t.Fatalf("warm job: %v err %v", warm.Status(), warm.Err())
	}

	var h *Handle
	done := make(chan struct{})
	if !loop.Post(func() {
		var err error
		h, err = s.Submit("bob", job, SubmitOptions{RelaxFloor: true, KeepEngines: true})
		if err != nil {
			t.Error(err)
		}
		if h.prepared == nil || h.prepared.plan == nil || !h.planReady {
			t.Errorf("warm shape did not probe-hit: prepared=%v ready=%v", h.prepared, h.planReady)
		}
		cl.AddVM("late-vm", hardware.NDv4SKUName, false)
		close(done)
	}) {
		t.Fatal("loop closed")
	}
	<-done
	waitDone(t, loop, h)
	if h.Status() != JobDone || h.Err() != nil {
		t.Fatalf("status %v err %v, want done via inline re-plan", h.Status(), h.Err())
	}
	var st SchedulerStats
	statsDone := make(chan struct{})
	loop.Post(func() { st = s.Stats(); close(statsDone) })
	<-statsDone
	if st.PlanConflicts != 1 {
		t.Errorf("conflicts = %d, want 1 (stamp stale at start)", st.PlanConflicts)
	}
}
