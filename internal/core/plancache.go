package core

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/contentkey"
	"repro/internal/dag"
	"repro/internal/hardware"
	"repro/internal/optimizer"
	"repro/internal/planner"
	"repro/internal/workflow"
)

// The plan cache memoizes optimizer.Plan results. A load sweep submits
// hundreds of structurally-identical jobs; without the cache each submit
// re-enumerates every (implementation, config, parallelism, paths) candidate
// and re-runs the O(n²) Pareto prune. The key captures everything Plan reads:
//
//   - the DAG's (capability, work) content — the only node fields demands()
//     consumes;
//   - the search options (constraint, quality floor, relaxation, pins, max
//     execution paths);
//   - the capacity class: total CPU cores and total GPUs per type, the only
//     snapshot fields the optimizer consumes. A capacity change (VM added,
//     cloud resized) therefore changes the key, which is the invalidation;
//   - the profile-store and library generations, so registering an
//     implementation or recalibrating a profile can never serve a stale plan.
//
// Plans are immutable after construction (the runtime and stages only read
// Decisions), so cached plans are shared across executions by pointer.
//
// Keys are built into the runtime's reusable []byte scratch and probed with
// the no-alloc m[string(buf)] pattern; a key string is only materialized — via
// the runtime's interner, once per distinct content — when it must outlive
// the probe (a cache insert, or the job key the scheduler holds across an
// off-loop search).

// planCacheLimit bounds memory: the cache holds at most this many plans and
// resets wholesale when full (distinct keys are few in practice — job shapes
// × capacity classes — so a reset effectively never fires mid-sweep).
const planCacheLimit = 1024

// appendPlanCacheKey renders the plan-cache key into key and returns the
// extended slice.
func appendPlanCacheKey(key []byte, g *dag.Graph, snap cluster.Snapshot, opts optimizer.Options, storeGen, libGen int) []byte {
	for _, n := range g.Nodes() {
		key = contentkey.AppendString(key, n.Capability)
		key = contentkey.AppendFloat(key, n.Work)
	}
	return appendPlanEnv(key, snap, opts, storeGen, libGen)
}

// planCacheKey is the string form of appendPlanCacheKey (tests and cold
// paths).
func planCacheKey(g *dag.Graph, snap cluster.Snapshot, opts optimizer.Options, storeGen, libGen int) string {
	return string(appendPlanCacheKey(make([]byte, 0, 256), g, snap, opts, storeGen, libGen))
}

// appendPlanEnv renders everything a plan depends on besides the DAG itself:
// the search options, the capacity class and the store/library generations.
// appendPlanCacheKey prefixes it with the DAG's content; searchKeyFrom
// prefixes it with the job's content key (which determines the DAG, so the
// two keys discriminate identically).
func appendPlanEnv(key []byte, snap cluster.Snapshot, opts optimizer.Options, storeGen, libGen int) []byte {
	key = append(key, "|c"...)
	key = contentkey.AppendInt(key, int(opts.Constraint))
	key = append(key, "|q"...)
	key = contentkey.AppendFloat(key, opts.MinQuality)
	if opts.RelaxFloor {
		key = append(key, "|relax"...)
	}
	key = append(key, "|p"...)
	key = contentkey.AppendInt(key, opts.MaxPaths)
	if len(opts.Pinned) > 0 {
		caps := make([]string, 0, len(opts.Pinned))
		for c := range opts.Pinned {
			caps = append(caps, c)
		}
		sort.Strings(caps)
		for _, c := range caps {
			pin := opts.Pinned[c]
			key = append(key, "|pin"...)
			key = contentkey.AppendString(key, c)
			key = contentkey.AppendString(key, pin.Implementation)
			key = contentkey.AppendString(key, pin.Config.String())
			key = contentkey.AppendInt(key, pin.Parallelism)
			if pin.ExecutionPaths > 1 {
				key = append(key, "+ep"...)
				key = contentkey.AppendInt(key, pin.ExecutionPaths)
			}
			if pin.AllowScaling {
				key = append(key, "+scale"...)
			}
		}
	}
	key = append(key, "|cores"...)
	key = contentkey.AppendInt(key, snap.TotalCPUCores)
	switch len(snap.TotalGPUs) {
	case 0:
	case 1:
		for t, n := range snap.TotalGPUs {
			key = appendGPU(key, string(t), n)
		}
	default:
		types := make([]string, 0, len(snap.TotalGPUs))
		for t := range snap.TotalGPUs {
			types = append(types, string(t))
		}
		sort.Strings(types)
		for _, t := range types {
			key = appendGPU(key, t, snap.TotalGPUs[hardware.GPUType(t)])
		}
	}
	key = append(key, "|sg"...)
	key = contentkey.AppendInt(key, storeGen)
	key = append(key, "|lg"...)
	return contentkey.AppendInt(key, libGen)
}

func appendGPU(key []byte, t string, n int) []byte {
	key = append(key, "|gpu"...)
	key = contentkey.AppendString(key, t)
	return contentkey.AppendInt(key, n)
}

// searchKeyFrom is the singleflight key for off-loop plan search: the job's
// content key plus the plan environment. Two submissions with equal search
// keys are guaranteed an identical decomposition (jobKey determines the DAG)
// and an identical plan (appendPlanEnv covers every other Plan input), so a
// burst of like jobs shares one search.
func searchKeyFrom(jobKey string, snap cluster.Snapshot, opts optimizer.Options, storeGen, libGen int) string {
	key := make([]byte, 0, len(jobKey)+128)
	key = append(key, jobKey...)
	return string(appendPlanEnv(key, snap, opts, storeGen, libGen))
}

// internKey materializes the scratch key as a canonical string — once per
// distinct content through the interner, or as a fresh copy when interning is
// force-disabled (the differential test's reference configuration).
func (rt *Runtime) internKey(key []byte) string {
	if rt.keys == nil {
		return string(key)
	}
	return rt.keys.Intern(key)
}

// planFor returns a cached plan for the key or computes and caches one.
func (rt *Runtime) planFor(g *dag.Graph, snap cluster.Snapshot, opts optimizer.Options) (*optimizer.Plan, error) {
	rt.keyBuf = appendPlanCacheKey(rt.keyBuf[:0], g, snap, opts, rt.store.Gen(), rt.lib.Gen())
	if p, ok := rt.planCache[string(rt.keyBuf)]; ok {
		rt.planCacheHits++
		return p, nil
	}
	p, err := rt.opt.Plan(g, snap, opts)
	if err != nil {
		return nil, err
	}
	if len(rt.planCache) >= planCacheLimit {
		rt.planCache = make(map[string]*optimizer.Plan)
	}
	rt.planCache[rt.internKey(rt.keyBuf)] = p
	return p, nil
}

// PlanCacheHits reports how many submissions reused a cached plan (for
// overhead accounting and tests).
func (rt *Runtime) PlanCacheHits() int { return rt.planCacheHits }

// KeyInternStats reports the runtime interner's lifetime hit/miss counters
// (zero when interning is disabled).
func (rt *Runtime) KeyInternStats() (hits, misses uint64) {
	if rt.keys == nil {
		return 0, 0
	}
	return rt.keys.Stats()
}

// appendJobKey renders a job's full content deterministically for the
// decomposition cache. Free-text fields (description, tasks, input names,
// attr keys) are length-prefixed and every numeric value is
// semicolon-terminated (';' cannot occur in a formatted float), so the
// encoding is injective — no crafted job content can collide with another
// job's key. Attribute maps are emitted in sorted key order.
func appendJobKey(key []byte, job workflow.Job, libGen int) []byte {
	key = contentkey.AppendString(key, job.Description)
	key = append(key, "|c"...)
	key = contentkey.AppendInt(key, int(job.Constraint))
	key = append(key, "|q"...)
	key = contentkey.AppendFloat(key, job.MinQuality)
	for _, t := range job.Tasks {
		key = append(key, "|t"...)
		key = contentkey.AppendString(key, t)
	}
	for _, in := range job.Inputs {
		key = append(key, "|i"...)
		key = contentkey.AppendString(key, in.Name)
		key = contentkey.AppendString(key, string(in.Kind))
		if len(in.Attrs) > 0 {
			keys := make([]string, 0, len(in.Attrs))
			for k := range in.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				key = contentkey.AppendString(key, k)
				key = contentkey.AppendFloat(key, in.Attrs[k])
			}
		}
	}
	key = append(key, "|lg"...)
	return contentkey.AppendInt(key, libGen)
}

// jobKey is the string form of appendJobKey (tests and cold paths).
func jobKey(job workflow.Job, libGen int) string {
	return string(appendJobKey(make([]byte, 0, 128), job, libGen))
}

// decompose memoizes planner decompositions per job content: the planner is
// deterministic and its output frozen, so structurally-identical jobs (the
// load sweep's bread and butter) share one DAG; each execution still gets
// its own Tracker. The library generation is in the key so registering a new
// implementation re-plans.
func (rt *Runtime) decompose(job workflow.Job) (*planner.Result, error) {
	rt.keyBuf = appendJobKey(rt.keyBuf[:0], job, rt.lib.Gen())
	if r, ok := rt.decompCache[string(rt.keyBuf)]; ok {
		rt.decompCacheHits++
		return r, nil
	}
	r, err := rt.pl.Decompose(job)
	if err != nil {
		return nil, err
	}
	if len(rt.decompCache) >= planCacheLimit {
		rt.decompCache = make(map[string]*planner.Result)
		// The planner's tool-call memos key on node pointers from the
		// evicted decompositions; drop them with the graphs they pin.
		rt.pl.ResetCallCache()
	}
	rt.decompCache[rt.internKey(rt.keyBuf)] = r
	return r, nil
}

// DecompCacheHits reports how many submissions reused a cached
// decomposition.
func (rt *Runtime) DecompCacheHits() int { return rt.decompCacheHits }

// probePrepared checks, without planning, whether the runtime's caches
// already hold both the decomposition and the plan for a submission — the
// fast path that lets the scheduler skip dispatching an off-loop search for
// job shapes the shard has seen before. It returns the job's content key
// (always — the scheduler holds it across an async search, so it is
// materialized through the interner) and the prepared pair (on a double
// hit). Runs on the engine goroutine.
func (rt *Runtime) probePrepared(job workflow.Job, opts SubmitOptions) (string, *preparedPlan) {
	rt.keyBuf = appendJobKey(rt.keyBuf[:0], job, rt.lib.Gen())
	jk := rt.internKey(rt.keyBuf)
	r, ok := rt.decompCache[jk]
	if !ok {
		return jk, nil
	}
	rt.keyBuf = appendPlanCacheKey(rt.keyBuf[:0], r.Graph, rt.cl.Snapshot(), planOptions(job, opts), rt.store.Gen(), rt.lib.Gen())
	p, ok := rt.planCache[string(rt.keyBuf)]
	if !ok {
		// Half a hit: hand the cached decomposition back so a dispatched
		// search can skip re-decomposing the (frozen, immutable) DAG.
		return jk, &preparedPlan{decomp: r}
	}
	rt.decompCacheHits++
	rt.planCacheHits++
	return jk, rt.stamp(&preparedPlan{decomp: r, plan: p})
}

// stamp records the live generations a prepared pair is valid under.
func (rt *Runtime) stamp(p *preparedPlan) *preparedPlan {
	p.capGen = rt.cl.CapacityGen()
	p.storeGen = rt.store.Gen()
	p.libGen = rt.lib.Gen()
	return p
}

// adoptPrepared installs an off-loop search result into the shared caches and
// returns the canonical pair to execute. It must only be called after the
// scheduler validated the result's generations (capacity class, profile
// store, library): under that guard the result is bit-identical to what the
// inline path would have computed, so caching it preserves determinism. If a
// cache entry raced in ahead of the commit (an inline submission on the same
// shape), the existing entry wins — its graph pointers are the ones the
// planner's tool-call memos key on.
func (rt *Runtime) adoptPrepared(jk string, job workflow.Job, opts SubmitOptions, decomp *planner.Result, plan *optimizer.Plan) *preparedPlan {
	if r, ok := rt.decompCache[jk]; ok {
		decomp = r
	} else {
		if len(rt.decompCache) >= planCacheLimit {
			rt.decompCache = make(map[string]*planner.Result)
			rt.pl.ResetCallCache()
		}
		rt.decompCache[jk] = decomp
	}
	rt.keyBuf = appendPlanCacheKey(rt.keyBuf[:0], decomp.Graph, rt.cl.Snapshot(), planOptions(job, opts), rt.store.Gen(), rt.lib.Gen())
	if p, ok := rt.planCache[string(rt.keyBuf)]; ok {
		plan = p
	} else {
		if len(rt.planCache) >= planCacheLimit {
			rt.planCache = make(map[string]*optimizer.Plan)
		}
		rt.planCache[rt.internKey(rt.keyBuf)] = plan
	}
	return rt.stamp(&preparedPlan{decomp: decomp, plan: plan})
}
