package core

import (
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/contentkey"
	"repro/internal/dag"
	"repro/internal/hardware"
	"repro/internal/optimizer"
	"repro/internal/planner"
	"repro/internal/workflow"
)

// The plan cache memoizes optimizer.Plan results. A load sweep submits
// hundreds of structurally-identical jobs; without the cache each submit
// re-enumerates every (implementation, config, parallelism, paths) candidate
// and re-runs the O(n²) Pareto prune. The key captures everything Plan reads:
//
//   - the DAG's (capability, work) content — the only node fields demands()
//     consumes;
//   - the search options (constraint, quality floor, relaxation, pins, max
//     execution paths);
//   - the capacity class: total CPU cores and total GPUs per type, the only
//     snapshot fields the optimizer consumes. A capacity change (VM added,
//     cloud resized) therefore changes the key, which is the invalidation;
//   - the profile-store and library generations, so registering an
//     implementation or recalibrating a profile can never serve a stale plan.
//
// Plans are immutable after construction (the runtime and stages only read
// Decisions), so cached plans are shared across executions by pointer.

// planCacheLimit bounds memory: the cache holds at most this many plans and
// resets wholesale when full (distinct keys are few in practice — job shapes
// × capacity classes — so a reset effectively never fires mid-sweep).
const planCacheLimit = 1024

func planCacheKey(g *dag.Graph, snap cluster.Snapshot, opts optimizer.Options, storeGen, libGen int) string {
	var b strings.Builder
	b.Grow(256)
	for _, n := range g.Nodes() {
		contentkey.WriteString(&b, n.Capability)
		contentkey.WriteFloat(&b, n.Work)
	}
	writePlanEnv(&b, snap, opts, storeGen, libGen)
	return b.String()
}

// writePlanEnv renders everything a plan depends on besides the DAG itself:
// the search options, the capacity class and the store/library generations.
// planCacheKey prefixes it with the DAG's content; searchKeyFrom prefixes it
// with the job's content key (which determines the DAG, so the two keys
// discriminate identically).
func writePlanEnv(b *strings.Builder, snap cluster.Snapshot, opts optimizer.Options, storeGen, libGen int) {
	b.WriteString("|c")
	contentkey.WriteInt(b, int(opts.Constraint))
	b.WriteString("|q")
	contentkey.WriteFloat(b, opts.MinQuality)
	if opts.RelaxFloor {
		b.WriteString("|relax")
	}
	b.WriteString("|p")
	contentkey.WriteInt(b, opts.MaxPaths)
	if len(opts.Pinned) > 0 {
		caps := make([]string, 0, len(opts.Pinned))
		for c := range opts.Pinned {
			caps = append(caps, c)
		}
		sort.Strings(caps)
		for _, c := range caps {
			pin := opts.Pinned[c]
			b.WriteString("|pin")
			contentkey.WriteString(b, c)
			contentkey.WriteString(b, pin.Implementation)
			contentkey.WriteString(b, pin.Config.String())
			contentkey.WriteInt(b, pin.Parallelism)
			if pin.ExecutionPaths > 1 {
				b.WriteString("+ep")
				contentkey.WriteInt(b, pin.ExecutionPaths)
			}
			if pin.AllowScaling {
				b.WriteString("+scale")
			}
		}
	}
	b.WriteString("|cores")
	contentkey.WriteInt(b, snap.TotalCPUCores)
	types := make([]string, 0, len(snap.TotalGPUs))
	for t := range snap.TotalGPUs {
		types = append(types, string(t))
	}
	sort.Strings(types)
	for _, t := range types {
		b.WriteString("|gpu")
		contentkey.WriteString(b, t)
		contentkey.WriteInt(b, snap.TotalGPUs[hardware.GPUType(t)])
	}
	b.WriteString("|sg")
	contentkey.WriteInt(b, storeGen)
	b.WriteString("|lg")
	contentkey.WriteInt(b, libGen)
}

// searchKeyFrom is the singleflight key for off-loop plan search: the job's
// content key plus the plan environment. Two submissions with equal search
// keys are guaranteed an identical decomposition (jobKey determines the DAG)
// and an identical plan (writePlanEnv covers every other Plan input), so a
// burst of like jobs shares one search.
func searchKeyFrom(jobKey string, snap cluster.Snapshot, opts optimizer.Options, storeGen, libGen int) string {
	var b strings.Builder
	b.Grow(len(jobKey) + 128)
	b.WriteString(jobKey)
	writePlanEnv(&b, snap, opts, storeGen, libGen)
	return b.String()
}

// planFor returns a cached plan for the key or computes and caches one.
func (rt *Runtime) planFor(g *dag.Graph, snap cluster.Snapshot, opts optimizer.Options) (*optimizer.Plan, error) {
	key := planCacheKey(g, snap, opts, rt.store.Gen(), rt.lib.Gen())
	if p, ok := rt.planCache[key]; ok {
		rt.planCacheHits++
		return p, nil
	}
	p, err := rt.opt.Plan(g, snap, opts)
	if err != nil {
		return nil, err
	}
	if len(rt.planCache) >= planCacheLimit {
		rt.planCache = make(map[string]*optimizer.Plan)
	}
	rt.planCache[key] = p
	return p, nil
}

// PlanCacheHits reports how many submissions reused a cached plan (for
// overhead accounting and tests).
func (rt *Runtime) PlanCacheHits() int { return rt.planCacheHits }

// jobKey renders a job's full content deterministically for the
// decomposition cache. Free-text fields (description, tasks, input names,
// attr keys) are length-prefixed and every numeric value is
// semicolon-terminated (';' cannot occur in a formatted float), so the
// encoding is injective — no crafted job content can collide with another
// job's key. Attribute maps are emitted in sorted key order.
func jobKey(job workflow.Job, libGen int) string {
	var b strings.Builder
	b.Grow(128)
	contentkey.WriteString(&b, job.Description)
	b.WriteString("|c")
	contentkey.WriteInt(&b, int(job.Constraint))
	b.WriteString("|q")
	contentkey.WriteFloat(&b, job.MinQuality)
	for _, t := range job.Tasks {
		b.WriteString("|t")
		contentkey.WriteString(&b, t)
	}
	for _, in := range job.Inputs {
		b.WriteString("|i")
		contentkey.WriteString(&b, in.Name)
		contentkey.WriteString(&b, string(in.Kind))
		if len(in.Attrs) > 0 {
			keys := make([]string, 0, len(in.Attrs))
			for k := range in.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				contentkey.WriteString(&b, k)
				contentkey.WriteFloat(&b, in.Attrs[k])
			}
		}
	}
	b.WriteString("|lg")
	contentkey.WriteInt(&b, libGen)
	return b.String()
}

// decompose memoizes planner decompositions per job content: the planner is
// deterministic and its output frozen, so structurally-identical jobs (the
// load sweep's bread and butter) share one DAG; each execution still gets
// its own Tracker. The library generation is in the key so registering a new
// implementation re-plans.
func (rt *Runtime) decompose(job workflow.Job) (*planner.Result, error) {
	key := jobKey(job, rt.lib.Gen())
	if r, ok := rt.decompCache[key]; ok {
		rt.decompCacheHits++
		return r, nil
	}
	r, err := rt.pl.Decompose(job)
	if err != nil {
		return nil, err
	}
	if len(rt.decompCache) >= planCacheLimit {
		rt.decompCache = make(map[string]*planner.Result)
		// The planner's tool-call memos key on node pointers from the
		// evicted decompositions; drop them with the graphs they pin.
		rt.pl.ResetCallCache()
	}
	rt.decompCache[key] = r
	return r, nil
}

// DecompCacheHits reports how many submissions reused a cached
// decomposition.
func (rt *Runtime) DecompCacheHits() int { return rt.decompCacheHits }

// probePrepared checks, without planning, whether the runtime's caches
// already hold both the decomposition and the plan for a submission — the
// fast path that lets the scheduler skip dispatching an off-loop search for
// job shapes the shard has seen before. It returns the job's content key
// (always) and the prepared pair (on a double hit). Runs on the engine
// goroutine.
func (rt *Runtime) probePrepared(job workflow.Job, opts SubmitOptions) (string, *preparedPlan) {
	jk := jobKey(job, rt.lib.Gen())
	r, ok := rt.decompCache[jk]
	if !ok {
		return jk, nil
	}
	pk := planCacheKey(r.Graph, rt.cl.Snapshot(), planOptions(job, opts), rt.store.Gen(), rt.lib.Gen())
	p, ok := rt.planCache[pk]
	if !ok {
		// Half a hit: hand the cached decomposition back so a dispatched
		// search can skip re-decomposing the (frozen, immutable) DAG.
		return jk, &preparedPlan{decomp: r}
	}
	rt.decompCacheHits++
	rt.planCacheHits++
	return jk, rt.stamp(&preparedPlan{decomp: r, plan: p})
}

// stamp records the live generations a prepared pair is valid under.
func (rt *Runtime) stamp(p *preparedPlan) *preparedPlan {
	p.capGen = rt.cl.CapacityGen()
	p.storeGen = rt.store.Gen()
	p.libGen = rt.lib.Gen()
	return p
}

// adoptPrepared installs an off-loop search result into the shared caches and
// returns the canonical pair to execute. It must only be called after the
// scheduler validated the result's generations (capacity class, profile
// store, library): under that guard the result is bit-identical to what the
// inline path would have computed, so caching it preserves determinism. If a
// cache entry raced in ahead of the commit (an inline submission on the same
// shape), the existing entry wins — its graph pointers are the ones the
// planner's tool-call memos key on.
func (rt *Runtime) adoptPrepared(jk string, job workflow.Job, opts SubmitOptions, decomp *planner.Result, plan *optimizer.Plan) *preparedPlan {
	if r, ok := rt.decompCache[jk]; ok {
		decomp = r
	} else {
		if len(rt.decompCache) >= planCacheLimit {
			rt.decompCache = make(map[string]*planner.Result)
			rt.pl.ResetCallCache()
		}
		rt.decompCache[jk] = decomp
	}
	pk := planCacheKey(decomp.Graph, rt.cl.Snapshot(), planOptions(job, opts), rt.store.Gen(), rt.lib.Gen())
	if p, ok := rt.planCache[pk]; ok {
		plan = p
	} else {
		if len(rt.planCache) >= planCacheLimit {
			rt.planCache = make(map[string]*optimizer.Plan)
		}
		rt.planCache[pk] = plan
	}
	return rt.stamp(&preparedPlan{decomp: decomp, plan: plan})
}
