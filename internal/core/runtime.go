// Package core is Murakkab's adaptive runtime — the paper's primary
// contribution (§3). It accepts declarative Jobs (Listing 2), lowers them to
// task DAGs via the planner, chooses implementations and resources via the
// optimizer, and executes the DAG against the cluster through the
// workflow-aware cluster manager:
//
//   - LLM-served capabilities run on shared serving engines with continuous
//     batching (intra-workflow parallelism falls out of the DAG frontier);
//   - other capabilities run on elastic worker pools that hold resources
//     only while work is queued — no resource stranding;
//   - the cluster manager sees the DAG (lookahead) and feeds stats back;
//   - preempted tasks retry; preempted engines rebuild.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/clustermgr"
	"repro/internal/contentkey"
	"repro/internal/dag"
	"repro/internal/hardware"
	"repro/internal/llmsim"
	"repro/internal/optimizer"
	"repro/internal/planner"
	"repro/internal/profiles"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/vectordb"
	"repro/internal/workflow"
)

// Config wires a Runtime.
type Config struct {
	Engine  *sim.Engine
	Cluster *cluster.Cluster
	Library *agents.Library
	// Manager is created over Cluster when nil.
	Manager *clustermgr.Manager
	// Profiles is built by profiling Library when nil (the §3.3(a)
	// amortized profiling pass).
	Profiles *profiles.Store
	// ProfileRegistry scopes that amortized profiling pass when Profiles is
	// nil: cluster nodes pass their per-node registry so profile state can
	// replicate between nodes as content-keyed deltas. Nil uses the
	// process-wide default registry.
	ProfileRegistry *profiles.Registry
	// RebalancePeriod enables the manager's rebalancing loop when > 0.
	RebalancePeriod sim.Duration
	// CPUType prices CPU cores; defaults to the EPYC in the paper testbed.
	CPUType hardware.CPUType
}

// Runtime is the Murakkab runtime.
type Runtime struct {
	se    *sim.Engine
	cl    *cluster.Cluster
	mgr   *clustermgr.Manager
	lib   *agents.Library
	store *profiles.Store
	pl    *planner.Planner
	opt   *optimizer.Optimizer
	db    *vectordb.DB

	engineRefs map[string]int
	active     int
	nextExecID int
	// planCache memoizes optimizer plans across submissions (see
	// plancache.go); planCacheHits counts reuses. decompCache memoizes
	// planner decompositions the same way — the planner produces an
	// identical DAG for a structurally-identical job, and the graph is
	// frozen (read-only) so executions share it safely.
	planCache       map[string]*optimizer.Plan
	planCacheHits   int
	decompCache     map[string]*planner.Result
	decompCacheHits int
	// rebalance is the manager's loop period; the loop runs only while
	// workflows are active (a permanent ticker would keep the simulation's
	// event queue non-empty forever).
	rebalance sim.Duration
	// cpuType prices CPU cores for degradation-candidate costing (the same
	// type the optimizer was built with).
	cpuType hardware.CPUType

	// recovery is the failure-recovery state (nil until EnableRecovery;
	// see faults.go). onTaskFault, when set, runs after every recovered
	// task failure — the scheduler points it at the reconfiguration
	// controller so a failure is treated as a capacity event.
	recovery    *recoveryState
	onTaskFault func()

	// keyBuf is the reusable scratch every cache key and report label is
	// rendered into; keys interns the strings that must outlive the render
	// (nil when DisableAllocReuse, in which case each is a fresh copy).
	// capsBuf is the reusable sorted-capability scratch for engine
	// bring-up. All three are engine-goroutine-only, like the runtime.
	keyBuf  []byte
	keys    *contentkey.Interner
	capsBuf []string

	// workerPool and llmTaskPool recycle the per-task scratch of the two
	// dispatch paths (pool workers and LLM top-k barrier state). Stages are
	// per-execution, so pooling at the runtime level is what lets a
	// long-lived serving shard reach steady-state zero allocation across
	// jobs. Engine-goroutine-only; disabled by DisableAllocReuse.
	workerPool  []*worker
	llmTaskPool []*llmTask

	// scratchHits counts pool pops that reused a retired object;
	// scratchMisses counts fresh allocations. Engine-goroutine-only, read
	// via ScratchPoolStats from the same goroutine (shard snapshots run on
	// the shard's loop).
	scratchHits, scratchMisses uint64
}

// ScratchPoolStats reports the runtime's scratch-pool (worker + LLM-task)
// lifetime reuse counters. Hits stay zero when DisableAllocReuse is set
// (every acquisition is then a fresh allocation, counted as a miss).
func (rt *Runtime) ScratchPoolStats() (hits, misses uint64) {
	return rt.scratchHits, rt.scratchMisses
}

// poolCap bounds the runtime's scratch free lists; beyond it, retired
// scratch is left to the GC (a burst should not pin its high-water mark
// forever).
const poolCap = 256

// DisableAllocReuse, when set before stacks are constructed, force-disables
// the allocation-reuse fast paths: runtimes skip key interning (every cache
// key and report label is a fresh string) and newly-built testbeds allocate
// sim events individually instead of carving slabs. Outputs are bit-identical
// either way — the differential test runs the same workload with the flag on
// and off and compares reports byte for byte; this flag exists only to give
// that test a reference configuration.
var DisableAllocReuse bool

// New builds a runtime. Profiling the library happens here when no store is
// supplied.
func New(cfg Config) (*Runtime, error) {
	if cfg.Engine == nil || cfg.Cluster == nil || cfg.Library == nil {
		return nil, fmt.Errorf("core: Engine, Cluster and Library are required")
	}
	if cfg.CPUType == "" {
		cfg.CPUType = hardware.EPYC7V12
	}
	store := cfg.Profiles
	if store == nil {
		// Amortized profiling (§3.3(a)): the library is profiled once per
		// distinct (catalog, library) content; runtimes receive copy-on-write
		// views of the shared store.
		var err error
		store, err = agents.SharedProfilesIn(cfg.ProfileRegistry, cfg.Cluster.Catalog(), cfg.Library)
		if err != nil {
			return nil, fmt.Errorf("core: profiling library: %w", err)
		}
	}
	mgr := cfg.Manager
	if mgr == nil {
		mgr = clustermgr.New(cfg.Engine, cfg.Cluster)
	}
	rt := &Runtime{
		se:          cfg.Engine,
		cl:          cfg.Cluster,
		mgr:         mgr,
		lib:         cfg.Library,
		store:       store,
		pl:          planner.New(cfg.Library),
		opt:         optimizer.New(cfg.Cluster.Catalog(), cfg.Library, store, cfg.CPUType),
		db:          vectordb.New(64),
		engineRefs:  map[string]int{},
		planCache:   map[string]*optimizer.Plan{},
		decompCache: map[string]*planner.Result{},
		rebalance:   cfg.RebalancePeriod,
		cpuType:     cfg.CPUType,
	}
	if !DisableAllocReuse {
		rt.keys = contentkey.NewInterner(0)
	}
	return rt, nil
}

// Manager exposes the cluster manager (for stats and tests).
func (rt *Runtime) Manager() *clustermgr.Manager { return rt.mgr }

// VectorDB exposes the store embedding tasks write to.
func (rt *Runtime) VectorDB() *vectordb.DB { return rt.db }

// Profiles exposes the profile store.
func (rt *Runtime) Profiles() *profiles.Store { return rt.store }

// SubmitOptions tune one job execution.
type SubmitOptions struct {
	// Pinned forces per-capability configurations (the Figure 3 / Table 2
	// sweeps pin the STT configuration; the §4 setup pins engine sizes).
	Pinned map[string]optimizer.Pin
	// MaxPaths enables execution-path replication under MAX_QUALITY.
	MaxPaths int
	// RelaxFloor degrades the quality floor gracefully (default behaviour
	// when the floor is otherwise unsatisfiable stage-wise).
	RelaxFloor bool
	// KeepEngines leaves serving engines allocated after the job (for
	// multi-tenant runs where the next job reuses them).
	KeepEngines bool
	// SLOClass overrides the tenant's SLO tier for this job ("" = the
	// tenant mapping / default; ignored with SLO tiers disabled — see
	// Scheduler.EnableSLO). It does not affect planning, so it is not part
	// of the plan-cache or plan-search key.
	SLOClass string
}

// Execution tracks one submitted job.
type Execution struct {
	rt        *Runtime
	id        int
	job       workflow.Job
	opts      SubmitOptions
	plan      *optimizer.Plan
	decomp    *planner.Result
	tracker   *dag.Tracker
	tracer    *telemetry.Tracer
	rep       *report.Report
	startedAt sim.Time
	planLatS  float64
	stages    map[string]*stage
	done      bool
	err       error
	onDone    []func(*report.Report, error)
	toolCalls int
	retries   int
	// heldEngines records the serving-engine refs this execution holds, in
	// acquisition order (spec names; one entry per engine-served decision).
	// Explicit bookkeeping — rather than re-deriving the set from the plan at
	// finish — is what lets reconfiguration swap an engine-served decision
	// mid-flight without leaking or double-releasing refs.
	heldEngines []string
	// reconfigs counts adopted mid-flight re-plans.
	reconfigs int
	// readyBuf is the frontier scratch dispatchReady/completeNode reuse so
	// per-task dispatch never allocates a ready slice.
	readyBuf []dag.NodeID

	// Failure-recovery state (all nil/zero unless the runtime has recovery
	// enabled; see faults.go): per-task attempt counts, per-capability
	// failure counts, capabilities already degraded, pending retry events
	// (canceled at finish so no retry fires on a finished job), the seeded
	// jitter stream, the job-deadline timer, the bounded attempt history
	// and its observer.
	attempts   map[dag.NodeID]int
	capFails   map[string]int
	degraded   map[string]bool
	retryEvs   map[*sim.Event]bool
	recRng     *rand.Rand
	deadlineEv *sim.Event
	attemptLog []AttemptRecord
	onAttempt  func(AttemptRecord)
}

// Namespace is the execution's VectorDB namespace for embedding inserts.
func (ex *Execution) Namespace() string {
	return "exec-" + strconv.Itoa(ex.id) + "/" + ex.job.Description
}

// Done reports completion.
func (ex *Execution) Done() bool { return ex.done }

// Err returns the terminal error, if any.
func (ex *Execution) Err() error { return ex.err }

// Report returns the final report (nil until Done).
func (ex *Execution) Report() *report.Report {
	if !ex.done {
		return nil
	}
	return ex.rep
}

// Plan returns the optimizer's plan.
func (ex *Execution) Plan() *optimizer.Plan { return ex.plan }

// Decomposition returns the planner result (DAG, ReAct trace, queries).
func (ex *Execution) Decomposition() *planner.Result { return ex.decomp }

// ToolCalls returns the number of generated (and validated) tool calls.
func (ex *Execution) ToolCalls() int { return ex.toolCalls }

// Retries returns tasks re-executed after failures (preemptions).
func (ex *Execution) Retries() int { return ex.retries }

// Reconfigs returns how many mid-flight re-plans this execution adopted.
func (ex *Execution) Reconfigs() int { return ex.reconfigs }

// OnDone registers a completion callback.
func (ex *Execution) OnDone(fn func(*report.Report, error)) {
	if ex.done {
		fn(ex.rep, ex.err)
		return
	}
	ex.onDone = append(ex.onDone, fn)
}

// planOptions maps a job plus its submit options onto the optimizer's search
// options — the single definition both the inline path and the off-loop plan
// searchers use, so their searches are keyed and parameterized identically.
func planOptions(job workflow.Job, opts SubmitOptions) optimizer.Options {
	return optimizer.Options{
		Constraint: job.Constraint,
		MinQuality: job.MinQuality,
		RelaxFloor: opts.RelaxFloor,
		Pinned:     opts.Pinned,
		MaxPaths:   opts.MaxPaths,
	}
}

// Submit plans and launches a job. Errors in planning or optimization are
// returned synchronously; execution then proceeds when the simulation
// engine runs.
func (rt *Runtime) Submit(job workflow.Job, opts SubmitOptions) (*Execution, error) {
	decomp, err := rt.decompose(job)
	if err != nil {
		return nil, err
	}
	// Plans are memoized: the load sweep's structurally-identical jobs reuse
	// the first job's configuration search instead of re-enumerating and
	// re-pruning per submit (§3.3(c) amortized).
	plan, err := rt.planFor(decomp.Graph, rt.cl.Snapshot(), planOptions(job, opts))
	if err != nil {
		return nil, err
	}
	return rt.launch(job, opts, decomp, plan)
}

// launch starts execution of an already-planned job: the inline Submit path
// lands here after decomposing and planning on the engine goroutine, and the
// scheduler's optimistic-commit path lands here directly with a plan searched
// off-loop against a validated snapshot.
func (rt *Runtime) launch(job workflow.Job, opts SubmitOptions, decomp *planner.Result, plan *optimizer.Plan) (*Execution, error) {
	rt.nextExecID++
	ex := &Execution{
		rt:        rt,
		id:        rt.nextExecID,
		job:       job,
		opts:      opts,
		plan:      plan,
		decomp:    decomp,
		tracker:   dag.NewTracker(decomp.Graph),
		tracer:    telemetry.NewTracer(),
		startedAt: rt.se.Now(),
		stages:    map[string]*stage{},
	}
	rt.keyBuf = append(append(rt.keyBuf[:0], "murakkab/"...), job.Constraint.String()...)
	ex.rep = &report.Report{
		Name:      rt.internKey(rt.keyBuf),
		Tracer:    ex.tracer,
		Quality:   plan.EstQuality,
		Decisions: make(map[string]string, len(plan.Decisions)),
	}
	// Decision labels repeat across every job sharing a cached plan; render
	// into the scratch and intern so steady-state admission reuses the
	// canonical strings.
	for cap, d := range plan.Decisions {
		rt.keyBuf = appendDecisionLabel(rt.keyBuf[:0], d)
		ex.rep.Decisions[cap] = rt.internKey(rt.keyBuf)
	}

	// Workflow-aware cluster management: the manager sees the DAG.
	rt.mgr.RegisterWorkflow(ex.tracker)
	rt.active++
	if rt.rebalance > 0 && !rt.mgr.RebalancingEnabled() {
		rt.mgr.EnableRebalancing(rt.rebalance)
	}

	// Bring up serving engines for the LLM capabilities, then charge the
	// planning queries against the orchestrator engine, then start the DAG.
	if err := ex.ensureEngines(); err != nil {
		rt.mgr.UnregisterWorkflow(ex.tracker)
		rt.active--
		return nil, err
	}
	ex.initRecovery()
	ex.chargePlanning(func() { ex.dispatchReady() })
	return ex, nil
}

// engineSpecFor maps an LLM implementation to its serving ModelSpec.
func engineSpecFor(impl string) (llmsim.ModelSpec, bool) {
	switch impl {
	case agents.ImplNVLM:
		return llmsim.NVLMText(), true
	case "nvlm-d-72b-qa":
		spec := llmsim.NVLMText()
		spec.Name = "nvlm-d-72b-qa"
		return spec, true
	case agents.ImplLlama70B:
		spec := llmsim.NVLMText()
		spec.Name = agents.ImplLlama70B
		return spec, true
	case agents.ImplLlama8B:
		return llmsim.Llama8B(), true
	case agents.ImplNVLMEmbed:
		return llmsim.NVLMEmbed(), true
	default:
		return llmsim.ModelSpec{}, false
	}
}

// engineServed reports whether a decision executes on a shared serving
// engine: the capability must be LLM-served AND the chosen implementation
// an actual LLM. A capability like embedding can also be served by a small
// CPU model (minilm), which then runs on a plain worker pool.
func (ex *Execution) engineServed(cap string, d optimizer.Decision) bool {
	if !agents.LLMCapabilities()[agents.Capability(cap)] {
		return false
	}
	im, ok := ex.rt.lib.Lookup(d.Implementation)
	return ok && im.Kind == agents.KindLLM
}

func (ex *Execution) ensureEngines() error {
	rt := ex.rt
	rt.capsBuf = appendSortedCaps(rt.capsBuf[:0], ex.plan.Decisions)
	for _, cap := range rt.capsBuf {
		d := ex.plan.Decisions[cap]
		if !ex.engineServed(cap, d) {
			continue
		}
		name, err := ex.acquireEngineRef(cap, d, "planned")
		if err != nil {
			return err
		}
		ex.heldEngines = append(ex.heldEngines, name)
	}
	return nil
}

// acquireEngineRef ensures the serving engine behind an engine-served
// decision and takes one ref on it, returning the engine's spec name. It is
// the single definition of the engine-acquisition invariants (spec lookup,
// GPU validation, scaling envelope, ref bookkeeping) shared by admission
// (ensureEngines) and mid-flight reconfiguration (adoptPlan); verb names the
// planning step for error messages.
func (ex *Execution) acquireEngineRef(cap string, d optimizer.Decision, verb string) (string, error) {
	spec, ok := engineSpecFor(d.Implementation)
	if !ok {
		return "", fmt.Errorf("core: no serving spec for LLM implementation %q", d.Implementation)
	}
	if d.Config.GPUs == 0 {
		return "", fmt.Errorf("core: LLM capability %q %s without GPUs (%v)", cap, verb, d.Config)
	}
	im, _ := ex.rt.lib.Lookup(d.Implementation)
	h, err := ex.rt.mgr.EnsureEngine(cap, spec, d.Config.GPUs, d.Config.GPUType,
		im.Perf.MinGPUs, im.Perf.MaxGPUs, d.Pinned && !d.AllowScaling)
	if err != nil {
		return "", err
	}
	ex.rt.engineRefs[h.Spec.Name]++
	return h.Spec.Name, nil
}

// chargePlanning submits the planner's LLM queries to the orchestrator
// engine (the summarization engine when present) and invokes next when they
// complete. §3.3(b): these are short-input/short-output queries.
func (ex *Execution) chargePlanning(next func()) {
	start := ex.rt.se.Now()
	h, ok := ex.rt.mgr.EngineForCapability(string(agents.CapSummarization))
	if !ok {
		// No orchestrator engine in this workflow; charge a fixed small
		// remote-call latency instead.
		ex.rt.se.After(0.5, func() {
			ex.planLatS = 0.5
			next()
		})
		return
	}
	remaining := len(ex.decomp.Queries)
	if remaining == 0 {
		ex.rt.se.Defer(next)
		return
	}
	// One completion closure shared by every planning query (not one per
	// query); request IDs repeat across jobs of a shape, so they intern.
	onComplete := func(*llmsim.Request) {
		remaining--
		if remaining == 0 {
			ex.planLatS = ex.rt.se.Now().Sub(start).Seconds()
			next()
		}
	}
	rt := ex.rt
	for i, q := range ex.decomp.Queries {
		rt.keyBuf = append(rt.keyBuf[:0], "plan-"...)
		rt.keyBuf = append(rt.keyBuf, q.Purpose...)
		rt.keyBuf = append(rt.keyBuf, '-')
		rt.keyBuf = strconv.AppendInt(rt.keyBuf, int64(i), 10)
		h.Engine.Submit(&llmsim.Request{
			ID:           rt.internKey(rt.keyBuf),
			PromptTokens: q.PromptTokens,
			OutputTokens: q.OutputTokens,
			OnComplete:   onComplete,
		})
	}
}

// Cancel terminates the execution: stages shut down, workers release their
// allocations and the report is finalized over the truncated run. In-flight
// engine requests drain harmlessly (their completions are ignored). Cancel
// reports whether the execution was still live.
func (ex *Execution) Cancel() bool {
	if ex.done {
		return false
	}
	ex.finish(ErrCanceled)
	return true
}

// dispatchReady feeds every ready DAG node to its capability stage.
func (ex *Execution) dispatchReady() {
	if ex.done {
		// Canceled (or failed) while the planning queries were in flight.
		return
	}
	ex.readyBuf = ex.tracker.AppendReady(ex.readyBuf[:0])
	for _, id := range ex.readyBuf {
		node, _ := ex.tracker.Graph().Node(id)
		if err := ex.tracker.Start(id); err != nil {
			panic(err)
		}
		ex.stageFor(node.Capability).enqueue(node)
	}
}

// completeNode marks a node done and dispatches newly-ready successors.
func (ex *Execution) completeNode(id dag.NodeID) {
	if ex.done {
		// A canceled execution's in-flight engine requests still complete;
		// their results are dropped.
		return
	}
	newly, err := ex.tracker.CompleteAppend(id, ex.readyBuf[:0])
	ex.readyBuf = newly
	if err != nil {
		panic(err)
	}
	for _, nid := range newly {
		node, _ := ex.tracker.Graph().Node(nid)
		if err := ex.tracker.Start(nid); err != nil {
			panic(err)
		}
		ex.stageFor(node.Capability).enqueue(node)
	}
	if ex.tracker.Done() {
		ex.finish(nil)
	}
}

func (ex *Execution) finish(err error) {
	if ex.done {
		return
	}
	ex.done = true
	ex.err = err
	ex.cancelRecovery()
	ex.rt.mgr.UnregisterWorkflow(ex.tracker)
	ex.rt.active--
	if ex.rt.active == 0 && ex.rt.rebalance > 0 {
		ex.rt.mgr.StopRebalancing()
	}
	for _, st := range ex.stages {
		st.shutdown()
	}
	if !ex.opts.KeepEngines {
		ex.rt.releaseEngineRefs(ex)
	}
	ex.rep.StartS = ex.startedAt.Seconds()
	ex.rep.MakespanS = ex.rt.se.Now().Sub(ex.startedAt).Seconds()
	ex.rep.TasksCompleted = ex.tracker.CompletedCount()
	if ex.rep.MakespanS > 0 {
		ex.rep.PlanningOverheadFrac = ex.planLatS / ex.rep.MakespanS
	}
	// A window behind the retention watermark means the serving layer's
	// compaction policy violated its invariant (never compact past a live
	// job's start); surface it as the job's terminal error rather than
	// shipping a report silently zeroed over missing history.
	if ferr := report.Finalize(ex.rep, ex.rt.cl); ferr != nil && ex.err == nil {
		ex.err = ferr
	}
	for _, fn := range ex.onDone {
		fn(ex.rep, ex.err)
	}
}

func (rt *Runtime) releaseEngineRefs(ex *Execution) {
	for _, name := range ex.heldEngines {
		rt.releaseEngineRef(name)
	}
	ex.heldEngines = nil
}

// releaseEngineRef drops one ref on a serving engine, draining and releasing
// it when this was the last.
func (rt *Runtime) releaseEngineRef(name string) {
	rt.engineRefs[name]--
	if rt.engineRefs[name] == 0 {
		if h, ok := rt.mgr.Engine(name); ok {
			// Drain then release: in-flight requests (none, if the DAG
			// is done) finish first.
			h.Engine.OnDrained(func() { rt.mgr.ReleaseEngine(name) })
		}
	}
}

// sortedCaps returns decision keys in sorted order: engine creation and
// release must not depend on map iteration order, or device placement (and
// with it float summation order in the energy integrals) becomes
// nondeterministic.
func sortedCaps(m map[string]optimizer.Decision) []string {
	return appendSortedCaps(make([]string, 0, len(m)), m)
}

// appendSortedCaps is sortedCaps into a reusable scratch buffer.
func appendSortedCaps(buf []string, m map[string]optimizer.Decision) []string {
	for k := range m {
		buf = append(buf, k)
	}
	sort.Strings(buf)
	return buf
}

// appendDecisionLabel renders a plan decision as "impl @ config ×N[ paths=M]"
// — the report's Decisions value — into buf.
func appendDecisionLabel(buf []byte, d optimizer.Decision) []byte {
	buf = append(buf, d.Implementation...)
	buf = append(buf, " @ "...)
	buf = d.Config.AppendTo(buf)
	buf = append(buf, " ×"...)
	buf = strconv.AppendInt(buf, int64(d.Parallelism), 10)
	if d.ExecutionPaths > 1 {
		buf = append(buf, " paths="...)
		buf = strconv.AppendInt(buf, int64(d.ExecutionPaths), 10)
	}
	return buf
}

// trackName maps capabilities to Figure 3's track labels.
func trackName(capability string) string {
	switch agents.Capability(capability) {
	case agents.CapFrameExtraction:
		return "Frame Extraction"
	case agents.CapSpeechToText:
		return "Speech-to-Text"
	case agents.CapObjectDetection:
		return "Object Detection"
	case agents.CapSummarization:
		return "LLM (Text)"
	case agents.CapEmbedding:
		return "LLM (Embeddings)"
	case agents.CapQA:
		return "LLM (QA)"
	default:
		return capability
	}
}
