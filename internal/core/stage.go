package core

import (
	"fmt"
	"strconv"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/llmsim"
	"repro/internal/optimizer"
	"repro/internal/sim"
	"repro/internal/vectordb"
)

// stage executes one capability's tasks as a resumable segment bound to one
// optimizer decision. LLM capabilities submit to a shared serving engine
// (concurrency via continuous batching); everything else runs on an elastic
// worker pool that holds resources only while work is queued — releasing
// them the moment the stage drains, which is the anti-stranding behaviour
// the baseline lacks.
//
// The binding (dec/im/isLLM) is stage-local rather than read through the
// execution's plan so the reconfiguration controller can swap it at a stage
// boundary: rebind installs a new decision for tasks that have not started,
// while tasks in flight always finish under the binding they started with.
type stage struct {
	ex  *Execution
	cap string
	// dec is the segment's current binding — the decision every task of this
	// stage executes under until the next rebind.
	dec   optimizer.Decision
	isLLM bool
	// im is the binding's implementation, looked up once per rebind via the
	// no-clone Library.Lookup (read-only by contract — the dispatch hot path
	// must not allocate a defensive copy per task). nil if the decision
	// names an unknown implementation — workers surface that as an
	// execution error.
	im *agents.Implementation

	queue   []*dag.Node
	workers []*worker
	// inflight counts tasks executing right now (submitted LLM requests or
	// busy workers). A stage is at a boundary — and its binding swappable —
	// exactly when inflight is zero; queued tasks have not started and may
	// re-route.
	inflight int

	// rebinding gates pump during rebind's teardown: destroying a worker
	// releases its allocation, which synchronously re-grants to this stage's
	// still-acquiring workers — and their becomeReady→pump would start tasks
	// under the outgoing binding mid-teardown.
	rebinding    bool
	shutdownFlag bool

	// pumpFn is the method value st.pump materialized once: deferring the
	// pump rides the hot path, and a fresh closure per Defer showed up in the
	// allocation profile.
	pumpFn func()
}

func (ex *Execution) stageFor(capability string) *stage {
	if st, ok := ex.stages[capability]; ok {
		return st
	}
	dec := ex.plan.Decisions[capability]
	im, _ := ex.rt.lib.Lookup(dec.Implementation)
	st := &stage{
		ex:    ex,
		cap:   capability,
		dec:   dec,
		isLLM: ex.engineServed(capability, dec),
		im:    im,
	}
	st.pumpFn = st.pump
	ex.stages[capability] = st
	return st
}

// beginRebind freezes the segment at its stage boundary: the pump is gated
// until finishRebind, so nothing can start a task under the outgoing
// binding. Adoption freezes EVERY stage it will rebind before tearing any
// of them down — a teardown releases allocations the cluster manager
// re-grants synchronously, and an unfrozen sibling's pump would otherwise
// start a task under a binding the same adoption is about to replace.
// Callers guarantee inflight == 0.
func (st *stage) beginRebind() {
	if st.inflight != 0 {
		panic("core: stage rebind with tasks in flight")
	}
	st.rebinding = true
}

// finishRebind tears the frozen segment's workers down (their grants
// release), installs the new decision and re-routes queued tasks under it —
// including across the worker-pool/engine-served divide.
func (st *stage) finishRebind(dec optimizer.Decision) {
	for len(st.workers) > 0 {
		st.workers[0].destroy()
	}
	st.rebinding = false
	st.dec = dec
	im, _ := st.ex.rt.lib.Lookup(dec.Implementation)
	st.im = im
	st.isLLM = st.ex.engineServed(st.cap, dec)
	q := st.queue
	st.queue = nil
	for _, node := range q {
		st.enqueue(node)
	}
}

func (st *stage) enqueue(node *dag.Node) {
	if st.isLLM {
		st.submitLLM(node)
		return
	}
	st.queue = append(st.queue, node)
	st.pump()
}

// --- LLM path ---------------------------------------------------------------

// llmTask is the top-k barrier state for one engine-served node: all
// execution paths share it and the last completion releases it. Tasks are
// recycled through the runtime's pool (the completion callback is a method
// value materialized once per task object), so steady-state LLM dispatch
// allocates only the requests themselves.
type llmTask struct {
	st        *stage
	node      *dag.Node
	span      int
	remaining int
	firstErr  error
	fn        func(*llmsim.Request)
}

func (rt *Runtime) newLLMTask() *llmTask {
	if n := len(rt.llmTaskPool); n > 0 && !DisableAllocReuse {
		t := rt.llmTaskPool[n-1]
		rt.llmTaskPool[n-1] = nil
		rt.llmTaskPool = rt.llmTaskPool[:n-1]
		rt.scratchHits++
		return t
	}
	rt.scratchMisses++
	t := &llmTask{}
	t.fn = t.onComplete
	return t
}

func (rt *Runtime) releaseLLMTask(t *llmTask) {
	t.st, t.node, t.firstErr = nil, nil, nil
	if !DisableAllocReuse && len(rt.llmTaskPool) < poolCap {
		rt.llmTaskPool = append(rt.llmTaskPool, t)
	}
}

func (t *llmTask) onComplete(r *llmsim.Request) {
	if r.Err != nil && t.firstErr == nil {
		t.firstErr = r.Err
	}
	t.remaining--
	if t.remaining > 0 {
		return // top-k barrier: wait for all paths
	}
	// Copy out and release first: the completion below can synchronously
	// enqueue more LLM nodes, which draw fresh tasks from the pool.
	st, node, span, firstErr := t.st, t.node, t.span, t.firstErr
	ex := st.ex
	ex.rt.releaseLLMTask(t)
	st.inflight--
	if ex.done {
		return // canceled mid-request: drop the result
	}
	ex.tracer.End(span, ex.rt.se.Now().Seconds())
	if firstErr != nil {
		// An injected call error fails the whole task (all paths re-run on
		// retry — the barrier's unit is the node, not the path).
		st.taskFailed(node, firstErr)
		return
	}
	if ex.rt.recovery != nil {
		ex.rt.mgr.ReportOutcome(st.dec.Implementation, true)
	}
	st.afterTask(node)
	ex.completeNode(node.ID)
}

func (st *stage) submitLLM(node *dag.Node) {
	ex := st.ex
	rt := ex.rt
	d := st.dec
	if _, err := rt.pl.ToolCallFor(node, d.Implementation); err != nil {
		ex.finish(fmt.Errorf("core: tool-call generation for %s: %w", node.ID, err))
		return
	}
	ex.toolCalls++

	spec, _ := engineSpecFor(d.Implementation)
	h, ok := rt.mgr.Engine(spec.Name)
	if !ok {
		ex.finish(fmt.Errorf("core: engine %s missing for %s", spec.Name, node.ID))
		return
	}
	prompt := metaInt(node, "prompt_tokens", int(node.Work))
	output := metaInt(node, "output_tokens", 0)

	paths := d.ExecutionPaths
	if paths < 1 {
		paths = 1
	}
	st.inflight++
	t := rt.newLLMTask()
	t.st, t.node, t.remaining = st, node, paths
	t.span = ex.tracer.Start(trackName(st.cap), string(node.ID), rt.se.Now().Seconds())
	for p := 0; p < paths; p++ {
		// Request IDs repeat across structurally-identical jobs; intern them
		// like the cache keys instead of re-materializing each submission.
		rt.keyBuf = append(rt.keyBuf[:0], node.ID...)
		rt.keyBuf = append(rt.keyBuf, '#')
		rt.keyBuf = strconv.AppendInt(rt.keyBuf, int64(p), 10)
		h.Engine.Submit(&llmsim.Request{
			ID:           rt.internKey(rt.keyBuf),
			PromptTokens: prompt,
			OutputTokens: output,
			OnComplete:   t.fn,
		})
	}
}

// afterTask applies capability-specific side effects (the embedding insert
// into the VectorDB from the §4 setup).
func (st *stage) afterTask(node *dag.Node) {
	if agents.Capability(st.cap) != agents.CapEmbedding {
		return
	}
	text := "summary of " + metaStr(node, "video", metaStr(node, "doc", "input")) +
		" scene " + metaStr(node, "scene", "-")
	db := st.ex.rt.db
	if err := db.Insert(st.ex.Namespace(), vectordb.Doc{
		ID:     string(node.ID),
		Vector: vectordb.Embed(text, db.Dim()),
		Text:   text,
	}); err != nil {
		panic(err)
	}
}

// --- worker-pool path --------------------------------------------------------

// worker holds one per-instance allocation and processes queued tasks
// back-to-back.
type worker struct {
	st       *stage
	gpuAlloc *cluster.GPUAlloc
	cpuAlloc *cluster.CPUAlloc
	ready    bool // allocations held
	busy     bool
	current  *dag.Node
	doneEv   *sim.Event
	// doneAt is doneEv's firing time, kept so an injected stall can push
	// the completion out without recomputing the task's duration.
	doneAt sim.Time
	// watchdogEv is the stage-timeout watchdog (armed only when recovery
	// sets a StageTimeoutS; see faults.go).
	watchdogEv *sim.Event
	span       int
	dead       bool
	// gen counts destroys: acquisition callbacks queued at the cluster
	// manager capture the generation they were issued under, so a callback
	// that outlives its worker's destroy (and possible reuse off the stage's
	// free list) releases the grant instead of resurrecting stale state.
	gen uint32
	// taskDoneFn/timedOutFn/preemptFn are method values materialized once
	// per worker; every task execution (and every allocation grant) would
	// otherwise mint a fresh closure on the hot path.
	taskDoneFn func()
	timedOutFn func()
	preemptFn  func()
}

// pump assigns queued tasks to ready workers, growing the pool up to the
// decision's parallelism.
func (st *stage) pump() {
	if st.shutdownFlag || st.rebinding {
		return
	}
	d := st.dec
	for len(st.queue) > 0 {
		w := st.idleReadyWorker()
		if w == nil {
			break
		}
		node := st.queue[0]
		st.queue = st.queue[1:]
		w.run(node)
	}
	// Grow the pool for remaining queued work.
	for len(st.queue) > st.pendingWorkerCount() && len(st.workers) < d.Parallelism {
		st.spawnWorker()
	}
	// Drain idle workers when nothing is queued: release resources.
	if len(st.queue) == 0 {
		for _, w := range st.workers {
			if w.ready && !w.busy {
				w.destroy()
			}
		}
	}
}

func (st *stage) idleReadyWorker() *worker {
	for _, w := range st.workers {
		if w.ready && !w.busy && !w.dead {
			return w
		}
	}
	return nil
}

// pendingWorkerCount counts workers still acquiring resources or idle-ready.
func (st *stage) pendingWorkerCount() int {
	n := 0
	for _, w := range st.workers {
		if w.dead || w.busy {
			continue
		}
		n++
	}
	return n
}

func (st *stage) spawnWorker() {
	rt := st.ex.rt
	var w *worker
	if n := len(rt.workerPool); n > 0 {
		w = rt.workerPool[n-1]
		rt.workerPool[n-1] = nil
		rt.workerPool = rt.workerPool[:n-1]
		w.st = st
		w.dead = false
		rt.scratchHits++
	} else {
		rt.scratchMisses++
		w = &worker{st: st}
		w.taskDoneFn = w.taskDone
		w.timedOutFn = w.timedOut
		w.preemptFn = w.preempted
	}
	st.workers = append(st.workers, w)
	w.acquire()
}

// acquire obtains the per-instance allocation (GPU first, then CPU for
// hybrid configs) through the cluster manager's queue.
func (w *worker) acquire() {
	cfg := w.st.dec.Config
	gen := w.gen
	needCPU := func() {
		if cfg.CPUCores == 0 {
			w.becomeReady()
			return
		}
		err := w.st.ex.rt.mgr.RequestCPUs(cfg.CPUCores, func(a *cluster.CPUAlloc) {
			if w.dead || w.gen != gen {
				a.Release()
				return
			}
			w.cpuAlloc = a
			a.OnPreempt = w.preemptFn
			w.becomeReady()
		})
		if err != nil {
			w.st.ex.finish(fmt.Errorf("core: %s worker CPUs: %w", w.st.cap, err))
		}
	}
	if cfg.GPUs > 0 {
		err := w.st.ex.rt.mgr.RequestGPUs(cfg.GPUs, cfg.GPUType, func(a *cluster.GPUAlloc) {
			if w.dead || w.gen != gen {
				a.Release()
				return
			}
			w.gpuAlloc = a
			a.OnPreempt = w.preemptFn
			needCPU()
		})
		if err != nil {
			w.st.ex.finish(fmt.Errorf("core: %s worker GPUs: %w", w.st.cap, err))
		}
		return
	}
	needCPU()
}

func (w *worker) becomeReady() {
	w.ready = true
	w.st.pump()
}

func (w *worker) run(node *dag.Node) {
	st := w.st
	ex := st.ex
	d := st.dec
	if _, err := ex.rt.pl.ToolCallFor(node, d.Implementation); err != nil {
		ex.finish(fmt.Errorf("core: tool-call generation for %s: %w", node.ID, err))
		return
	}
	ex.toolCalls++

	im := st.im
	if im == nil {
		ex.finish(fmt.Errorf("core: unknown implementation %q", d.Implementation))
		return
	}
	dur, err := im.Perf.LatencyS(node.Work, d.Config, ex.rt.cl.Catalog())
	if err != nil {
		ex.finish(fmt.Errorf("core: executing %s on %v: %w", node.ID, d.Config, err))
		return
	}
	w.busy = true
	w.current = node
	st.inflight++
	w.setIntensity(im.Perf.GPUIntensity, im.Perf.CPUIntensity)
	w.span = ex.tracer.Start(trackName(st.cap), string(node.ID), ex.rt.se.Now().Seconds())
	w.doneAt = ex.rt.se.Now().Add(sim.Duration(dur))
	w.doneEv = ex.rt.se.Schedule(w.doneAt, w.taskDoneFn)
	if rc := ex.rt.recovery; rc != nil && rc.policy.StageTimeoutS > 0 {
		w.watchdogEv = ex.rt.se.After(sim.Duration(rc.policy.StageTimeoutS), w.timedOutFn)
	}
}

// taskDone completes the worker's in-flight task.
func (w *worker) taskDone() {
	st := w.st
	ex := st.ex
	node := w.current
	w.doneEv = nil
	if w.watchdogEv != nil {
		w.watchdogEv.Cancel()
		w.watchdogEv = nil
	}
	w.setIntensity(0, 0)
	ex.tracer.End(w.span, ex.rt.se.Now().Seconds())
	w.busy = false
	w.current = nil
	st.inflight--
	if ex.rt.recovery != nil {
		ex.rt.mgr.ReportOutcome(st.dec.Implementation, true)
	}
	st.afterTask(node)
	ex.completeNode(node.ID)
	st.pump()
}

// stall pushes the in-flight task's completion out by d seconds — fault
// injection's hung stage call. Only the watchdog (if armed) can cut the
// stall short. Returns false when the worker is idle.
func (w *worker) stall(d float64) bool {
	if !w.busy || w.doneEv == nil {
		return false
	}
	w.doneEv.Cancel()
	w.doneAt = w.doneAt.Add(sim.Duration(d))
	w.doneEv = w.st.ex.rt.se.Schedule(w.doneAt, w.taskDoneFn)
	return true
}

// timedOut is the stage-timeout watchdog: the task ran longer than the
// policy allows, so it is cut short and routed through taskFailed — the
// worker itself is destroyed (a wedged process is not reused), and the
// retry respawns capacity through the normal pump path.
func (w *worker) timedOut() {
	w.watchdogEv = nil
	if w.dead || !w.busy || w.current == nil {
		return
	}
	st := w.st
	ex := st.ex
	node := w.current
	rc := ex.rt.recovery
	if w.doneEv != nil {
		w.doneEv.Cancel()
		w.doneEv = nil
	}
	ex.tracer.End(w.span, ex.rt.se.Now().Seconds())
	w.setIntensity(0, 0)
	w.busy = false
	w.current = nil
	st.inflight--
	rc.timeouts++
	w.destroy()
	st.taskFailed(node, &JobError{Code: CodeTaskFailed, Op: string(node.ID),
		Err: fmt.Errorf("core: stage %s timed out after %.0fs", st.cap, rc.policy.StageTimeoutS)})
	ex.rt.se.Defer(st.pumpFn)
}

func (w *worker) setIntensity(gpu, cpu float64) {
	if w.gpuAlloc != nil && !w.gpuAlloc.Released() {
		w.gpuAlloc.SetIntensity(gpu)
	}
	if w.cpuAlloc != nil && !w.cpuAlloc.Released() {
		w.cpuAlloc.SetIntensity(cpu)
	}
}

// preempted handles loss of the worker's VM: the in-flight task (if any)
// returns to the stage queue and a replacement worker is spawned.
func (w *worker) preempted() {
	if w.dead {
		return
	}
	st := w.st
	ex := st.ex
	if w.doneEv != nil {
		w.doneEv.Cancel()
		w.doneEv = nil
	}
	if w.current != nil {
		ex.tracer.End(w.span, ex.rt.se.Now().Seconds())
		if err := ex.tracker.Fail(w.current.ID); err != nil {
			panic(err)
		}
		// Re-enqueue: Fail returned it to ready; restart through the
		// tracker to keep state consistent.
		if err := ex.tracker.Start(w.current.ID); err != nil {
			panic(err)
		}
		st.queue = append(st.queue, w.current)
		ex.retries++
		w.current = nil
		w.busy = false
		st.inflight--
	}
	w.destroy()
	ex.rt.se.Defer(st.pumpFn)
}

// destroy releases the worker's allocations and removes it from the pool.
func (w *worker) destroy() {
	if w.dead {
		return
	}
	w.dead = true
	w.ready = false
	if w.busy {
		// Cancellation can destroy a busy worker; its in-flight task is
		// abandoned with it.
		w.busy = false
		w.st.inflight--
	}
	if w.doneEv != nil {
		w.doneEv.Cancel()
		w.doneEv = nil
	}
	if w.watchdogEv != nil {
		w.watchdogEv.Cancel()
		w.watchdogEv = nil
	}
	if w.gpuAlloc != nil {
		w.gpuAlloc.OnPreempt = nil
		w.gpuAlloc.Release()
		w.gpuAlloc = nil
	}
	if w.cpuAlloc != nil {
		w.cpuAlloc.OnPreempt = nil
		w.cpuAlloc.Release()
		w.cpuAlloc = nil
	}
	w.current = nil
	w.gen++
	st := w.st
	// NOTE: the vacated tail slot keeps a stale pointer past len. Callers
	// (pump's idle drain) range over a pre-removal snapshot of this slice,
	// so the slot must stay a valid *worker; the pointee lives on in the
	// runtime's pool regardless.
	for i, other := range st.workers {
		if other == w {
			st.workers = append(st.workers[:i], st.workers[i+1:]...)
			break
		}
	}
	rt := st.ex.rt
	if !DisableAllocReuse && len(rt.workerPool) < poolCap {
		rt.workerPool = append(rt.workerPool, w)
	}
}

// shutdown force-releases everything at workflow end.
func (st *stage) shutdown() {
	st.shutdownFlag = true
	for len(st.workers) > 0 {
		st.workers[0].destroy()
	}
}

func metaInt(node *dag.Node, key string, def int) int {
	if node.Metadata == nil {
		return def
	}
	v, ok := node.Metadata[key]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

func metaStr(node *dag.Node, key, def string) string {
	if node.Metadata == nil {
		return def
	}
	if v, ok := node.Metadata[key]; ok && v != "" {
		return v
	}
	return def
}
