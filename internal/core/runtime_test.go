package core

import (
	"strings"
	"testing"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/optimizer"
	"repro/internal/profiles"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workflow"
)

func paperJob(c workflow.Constraint) workflow.Job {
	return workflow.Job{
		Description: "List objects shown/mentioned in the videos",
		Inputs: []workflow.Input{
			workflow.VideoInput("cats.mov", 240, 30, 24),
			workflow.VideoInput("formula_1.mov", 240, 30, 24),
		},
		Tasks: []string{
			"Extract frames from each video",
			"Run speech-to-text on all scenes",
			"Detect objects in the frames",
		},
		Constraint: c,
		MinQuality: 0.95,
	}
}

// paperPins fixes the §4 engine deployment: NVLM 8 GPUs text, 2 embeddings.
func paperPins() map[string]optimizer.Pin {
	return map[string]optimizer.Pin{
		string(agents.CapSummarization): {
			Implementation: agents.ImplNVLM,
			Config:         profiles.ResourceConfig{GPUs: 8, GPUType: hardware.GPUA100},
		},
		string(agents.CapEmbedding): {
			Implementation: agents.ImplNVLMEmbed,
			Config:         profiles.ResourceConfig{GPUs: 2, GPUType: hardware.GPUA100},
		},
	}
}

func newRuntime(t *testing.T) (*sim.Engine, *cluster.Cluster, *Runtime) {
	t.Helper()
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	cl.AddVM("vm1", hardware.NDv4SKUName, false)
	rt, err := New(Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	return se, cl, rt
}

func runJob(t *testing.T, c workflow.Constraint) (*cluster.Cluster, *Execution, *report.Report) {
	t.Helper()
	se, cl, rt := newRuntime(t)
	ex, err := rt.Submit(paperJob(c), SubmitOptions{
		Pinned:     paperPins(),
		RelaxFloor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	se.Run()
	if !ex.Done() {
		t.Fatal("execution never completed")
	}
	if ex.Err() != nil {
		t.Fatal(ex.Err())
	}
	return cl, ex, ex.Report()
}

func TestMurakkabCompletesAllTasks(t *testing.T) {
	_, ex, rep := runJob(t, workflow.MinCost)
	if rep.TasksCompleted != 80 {
		t.Fatalf("tasks completed = %d, want 80", rep.TasksCompleted)
	}
	if rep.Tracer.OpenCount() != 0 {
		t.Fatal("open spans left behind")
	}
	if ex.ToolCalls() != 80 {
		t.Fatalf("tool calls = %d, want 80 (one per task)", ex.ToolCalls())
	}
}

func TestMurakkabMakespanNearPaper(t *testing.T) {
	// Table 2: Murakkab completes in 77–83 s depending on STT config. Under
	// MIN_COST (which picks the CPU config) we expect ≈ 83 s; allow ±20%.
	_, _, rep := runJob(t, workflow.MinCost)
	if rep.MakespanS < 60 || rep.MakespanS > 105 {
		t.Fatalf("murakkab MIN_COST makespan = %.1f s, want ≈ 83 s", rep.MakespanS)
	}
}

func TestMurakkabSpeedupOverBaseline(t *testing.T) {
	// The headline claim: ~3.4× faster than the 283 s baseline.
	_, _, rep := runJob(t, workflow.MinLatency)
	speedup := 285.0 / rep.MakespanS
	if speedup < 2.5 {
		t.Fatalf("speedup = %.2f× (makespan %.1f s), want ≥ 2.5×", speedup, rep.MakespanS)
	}
}

func TestMurakkabEnergyNearPaper(t *testing.T) {
	// Table 2 Murakkab CPU: 34 Wh. Allow ±35% (the shape matters: far
	// below the 155 Wh baseline).
	_, _, rep := runJob(t, workflow.MinCost)
	if rep.GPUEnergyWh < 22 || rep.GPUEnergyWh > 46 {
		t.Fatalf("murakkab MIN_COST GPU energy = %.1f Wh, want ≈ 34 Wh", rep.GPUEnergyWh)
	}
}

func TestMinCostPicksCPUSTT(t *testing.T) {
	_, ex, _ := runJob(t, workflow.MinCost)
	stt := ex.Plan().Decisions[string(agents.CapSpeechToText)]
	if stt.Config.GPUs != 0 {
		t.Fatalf("MIN_COST STT config = %v, want CPU-only (Table 2)", stt.Config)
	}
	if stt.Implementation != agents.ImplWhisper {
		t.Fatalf("STT impl = %s, want whisper under the quality floor", stt.Implementation)
	}
}

func TestPlanningOverheadUnderOnePercent(t *testing.T) {
	// §3.3(b): DAG creation takes "less than 1% of the execution time".
	_, _, rep := runJob(t, workflow.MinCost)
	if rep.PlanningOverheadFrac <= 0 {
		t.Fatal("planning overhead not recorded")
	}
	if rep.PlanningOverheadFrac > 0.01 {
		t.Fatalf("planning overhead = %.2f%%, want < 1%%", 100*rep.PlanningOverheadFrac)
	}
}

func TestResourcesFullyReleased(t *testing.T) {
	cl, _, _ := runJob(t, workflow.MinCost)
	if free := cl.FreeGPUs(hardware.GPUA100); free != 16 {
		t.Fatalf("free GPUs after run = %d, want 16", free)
	}
	if free := cl.FreeCPUCores(); free != 192 {
		t.Fatalf("free cores after run = %d, want 192", free)
	}
}

func TestVectorDBPopulatedPerScene(t *testing.T) {
	se, _, rt := newRuntime(t)
	job := paperJob(workflow.MinCost)
	ex, err := rt.Submit(job, SubmitOptions{Pinned: paperPins(), RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	se.Run()
	if !ex.Done() {
		t.Fatal("not done")
	}
	if got := rt.VectorDB().Len(ex.Namespace()); got != 16 {
		t.Fatalf("vectordb docs = %d, want 16", got)
	}
}

func TestUtilizationAboveBaseline(t *testing.T) {
	// Figure 3: Murakkab's trace shows far better utilization than the
	// baseline's ~19% GPU / ~1% CPU.
	_, _, rep := runJob(t, workflow.MinLatency)
	if rep.MeanGPUUtil < 0.25 {
		t.Fatalf("murakkab mean GPU util = %.2f, want > 0.25", rep.MeanGPUUtil)
	}
}

func TestTracksMatchFigure3(t *testing.T) {
	_, _, rep := runJob(t, workflow.MinCost)
	tracks := map[string]bool{}
	for _, tr := range rep.Tracer.Tracks() {
		tracks[tr] = true
	}
	for _, want := range []string{"Speech-to-Text", "LLM (Text)", "LLM (Embeddings)", "Object Detection"} {
		if !tracks[want] {
			t.Errorf("missing Figure 3 track %q (have %v)", want, rep.Tracer.Tracks())
		}
	}
}

func TestSTTParallelismInTrace(t *testing.T) {
	// Murakkab "executes STT transcription for multiple scenes in parallel":
	// STT spans must overlap in time.
	_, _, rep := runJob(t, workflow.MinCost)
	var overlap bool
	spans := rep.Tracer.Spans()
	for i, a := range spans {
		if a.Track != "Speech-to-Text" {
			continue
		}
		for _, b := range spans[i+1:] {
			if b.Track != "Speech-to-Text" {
				continue
			}
			if b.Start < a.End && a.Start < b.End {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Fatal("no overlapping STT spans; scenes ran sequentially")
	}
}

func TestDecisionsRecorded(t *testing.T) {
	_, _, rep := runJob(t, workflow.MinCost)
	stt, ok := rep.Decisions[string(agents.CapSpeechToText)]
	if !ok || !strings.Contains(stt, agents.ImplWhisper) {
		t.Fatalf("decisions = %v", rep.Decisions)
	}
}

func TestOnDoneCallback(t *testing.T) {
	se, _, rt := newRuntime(t)
	ex, err := rt.Submit(paperJob(workflow.MinCost), SubmitOptions{Pinned: paperPins(), RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	var got *report.Report
	ex.OnDone(func(r *report.Report, err error) { got = r })
	se.Run()
	if got == nil {
		t.Fatal("OnDone never fired")
	}
	// Registering after completion fires immediately.
	fired := false
	ex.OnDone(func(*report.Report, error) { fired = true })
	if !fired {
		t.Fatal("OnDone after completion did not fire synchronously")
	}
}

func TestSubmitErrorsSurfaceSynchronously(t *testing.T) {
	_, _, rt := newRuntime(t)
	// Unplannable job.
	_, err := rt.Submit(workflow.Job{
		Description: "Do something",
		Inputs:      []workflow.Input{{Name: "x", Kind: workflow.InputText}},
		Constraint:  workflow.MinCost,
	}, SubmitOptions{})
	if err == nil {
		t.Fatal("unplannable job accepted")
	}
	// Unsatisfiable floor without relaxation.
	job := paperJob(workflow.MinCost)
	job.MinQuality = 0.999
	if _, err := rt.Submit(job, SubmitOptions{}); err == nil {
		t.Fatal("unsatisfiable floor accepted")
	}
}

func TestNewsfeedWorkflowEndToEnd(t *testing.T) {
	se, _, rt := newRuntime(t)
	job := workflow.Job{
		Description: "Generate social media newsfeed for Alice",
		Inputs: []workflow.Input{
			{Name: "alice", Kind: workflow.InputUser},
			{Name: "f1", Kind: workflow.InputTopic, Attrs: map[string]float64{"queries": 3}},
			{Name: "cats", Kind: workflow.InputTopic, Attrs: map[string]float64{"queries": 3}},
		},
		Constraint: workflow.MinLatency,
	}
	ex, err := rt.Submit(job, SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	se.Run()
	if !ex.Done() || ex.Err() != nil {
		t.Fatalf("newsfeed failed: done=%v err=%v", ex.Done(), ex.Err())
	}
	if ex.Report().TasksCompleted != 5 {
		t.Fatalf("tasks = %d, want 5", ex.Report().TasksCompleted)
	}
}

func TestExecutionPathsRunMultipleRequests(t *testing.T) {
	se, _, rt := newRuntime(t)
	job := paperJob(workflow.MaxQuality)
	job.MinQuality = 0
	ex, err := rt.Submit(job, SubmitOptions{MaxPaths: 4, RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	se.Run()
	if !ex.Done() || ex.Err() != nil {
		t.Fatalf("max-quality run failed: %v", ex.Err())
	}
	sum := ex.Plan().Decisions[string(agents.CapSummarization)]
	if sum.ExecutionPaths < 2 {
		t.Fatalf("paths = %d, want >= 2 under MAX_QUALITY", sum.ExecutionPaths)
	}
	if ex.Report().Quality <= 0.9 {
		t.Fatalf("quality = %v", ex.Report().Quality)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() (float64, float64) {
		se, _, rt := newRuntime(t)
		ex, err := rt.Submit(paperJob(workflow.MinCost), SubmitOptions{Pinned: paperPins(), RelaxFloor: true})
		if err != nil {
			t.Fatal(err)
		}
		se.Run()
		return ex.Report().MakespanS, ex.Report().GPUEnergyWh
	}
	m1, e1 := run()
	m2, e2 := run()
	if m1 != m2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%v,%v) vs (%v,%v)", m1, e1, m2, e2)
	}
}

func TestMultiTenantSharedEngines(t *testing.T) {
	se, cl, rt := newRuntime(t)
	jobA := paperJob(workflow.MinCost)
	jobB := workflow.Job{
		Description: "Generate social media newsfeed for Alice",
		Inputs: []workflow.Input{
			{Name: "alice", Kind: workflow.InputUser},
			{Name: "f1", Kind: workflow.InputTopic},
		},
		Constraint: workflow.MinCost,
	}
	exA, err := rt.Submit(jobA, SubmitOptions{Pinned: paperPins(), RelaxFloor: true, KeepEngines: true})
	if err != nil {
		t.Fatal(err)
	}
	exB, err := rt.Submit(jobB, SubmitOptions{
		Pinned: map[string]optimizer.Pin{
			string(agents.CapSummarization): paperPins()[string(agents.CapSummarization)],
		},
		RelaxFloor: true, KeepEngines: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	se.Run()
	if !exA.Done() || !exB.Done() {
		t.Fatal("multi-tenant jobs did not complete")
	}
	if exA.Err() != nil || exB.Err() != nil {
		t.Fatalf("errors: %v / %v", exA.Err(), exB.Err())
	}
	// Engines kept: the NVLM deployment still holds its GPUs.
	if _, ok := rt.Manager().Engine("nvlm-d-72b"); !ok {
		t.Fatal("shared engine released despite KeepEngines")
	}
	if free := cl.FreeGPUs(hardware.GPUA100); free == 16 {
		t.Fatal("engines hold no GPUs")
	}
}
