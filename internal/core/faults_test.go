package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/llmsim"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// injectEvery schedules periodic fault injections over [fromS, toS) and
// returns a counter of the ones that found a victim.
func injectEvery(se *sim.Engine, s *Scheduler, ev workload.FaultEvent, fromS, toS, stepS float64) *int {
	landed := new(int)
	for at := fromS; at < toS; at += stepS {
		ev := ev
		ev.AtS = at
		se.After(sim.Duration(at), func() {
			if s.Inject(ev) {
				*landed++
			}
		})
	}
	return landed
}

func TestBackoffProperties(t *testing.T) {
	p := FaultPolicy{BackoffBaseS: 0.5, BackoffCapS: 8, JitterFrac: 0.2}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	for attempt := 1; attempt <= 24; attempt++ {
		for trial := 0; trial < 200; trial++ {
			u := rng.Float64()
			d := backoffFor(p, attempt, u)
			if d > p.BackoffCapS {
				t.Fatalf("backoff(%d, %v) = %v exceeds cap %v (jitter must respect the cap)",
					attempt, u, d, p.BackoffCapS)
			}
			if d < p.BackoffBaseS {
				t.Fatalf("backoff(%d, %v) = %v below base %v", attempt, u, d, p.BackoffBaseS)
			}
			base := backoffFor(p, attempt, 0)
			if d < base {
				t.Fatalf("jitter shrank the delay: backoff(%d, %v) = %v < %v", attempt, u, d, base)
			}
			if max := base * (1 + p.JitterFrac); d > max+1e-12 {
				t.Fatalf("jitter overshot its fraction: backoff(%d, %v) = %v > %v", attempt, u, d, max)
			}
			if again := backoffFor(p, attempt, u); again != d {
				t.Fatalf("backoff not deterministic: %v then %v", d, again)
			}
		}
		if attempt > 1 {
			lo, hi := backoffFor(p, attempt-1, 0), backoffFor(p, attempt, 0)
			if hi < lo {
				t.Fatalf("backoff not monotone: attempt %d gives %v after %v", attempt, hi, lo)
			}
		}
	}
}

func TestRecoveryRetriesTransientCallError(t *testing.T) {
	se, s := schedTestbed(t, 2)
	s.EnableRecovery(FaultPolicy{Seed: 5})
	h, err := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	// Three spaced injections: below the default four-attempt budget even if
	// every one lands on the same task.
	landed := injectEvery(se, s, workload.FaultEvent{Kind: workload.FaultCallError, Pick: 0.3}, 5, 35, 10)
	se.Run()
	if *landed == 0 {
		t.Fatal("no call-error injection found a busy engine; the schedule misses the run")
	}
	if h.Status() != JobDone || h.Err() != nil {
		t.Fatalf("status = %v err = %v, want recovery to absorb transient call errors", h.Status(), h.Err())
	}
	st := s.Stats()
	if st.TaskRetries == 0 {
		t.Fatalf("stats = %+v: injected %d call errors but recorded no retries", st, *landed)
	}
	attempts := h.Attempts()
	if len(attempts) == 0 {
		t.Fatal("no attempt history on a job that retried")
	}
	for _, a := range attempts {
		if a.BackoffS <= 0 || a.BackoffS > 8 {
			t.Fatalf("attempt backoff %v outside (0, cap]", a.BackoffS)
		}
		if a.Attempt < 1 || a.Task == "" || a.Err == "" {
			t.Fatalf("malformed attempt record %+v", a)
		}
	}
}

// TestRecoveryDeterministicAcrossRuns replays the identical scenario twice:
// the backoff jitter comes from a stream seeded by (policy seed, execution
// id), so the full attempt history — timestamps, delays, victims — must be
// bit-identical.
func TestRecoveryDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]AttemptRecord, SchedulerStats) {
		se, s := schedTestbed(t, 2)
		s.EnableRecovery(FaultPolicy{Seed: 5})
		h, err := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
		if err != nil {
			t.Fatal(err)
		}
		injectEvery(se, s, workload.FaultEvent{Kind: workload.FaultCallError, Pick: 0.3}, 5, 35, 10)
		se.Run()
		return h.Attempts(), s.Stats()
	}
	a1, st1 := run()
	a2, st2 := run()
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("attempt histories diverged:\n%+v\nvs\n%+v", a1, a2)
	}
	if st1 != st2 {
		t.Fatalf("stats diverged:\n%+v\nvs\n%+v", st1, st2)
	}
}

func TestRetriesExhaustedTypedErrorChain(t *testing.T) {
	se, s := schedTestbed(t, 2)
	s.EnableRecovery(FaultPolicy{MaxAttempts: 1, Seed: 5})
	h, err := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	landed := injectEvery(se, s, workload.FaultEvent{Kind: workload.FaultCallError, Pick: 0.3}, 5, 120, 5)
	se.Run()
	if *landed == 0 {
		t.Fatal("no injection landed")
	}
	if h.Status() != JobFailed {
		t.Fatalf("status = %v, want failed with a one-attempt budget", h.Status())
	}
	if code := ErrorCodeOf(h.Err()); code != CodeRetriesExhausted {
		t.Fatalf("error code = %q, want %q (err: %v)", code, CodeRetriesExhausted, h.Err())
	}
	var je *JobError
	if !errors.As(h.Err(), &je) {
		t.Fatalf("error %v is not a *JobError", h.Err())
	}
	if !errors.Is(h.Err(), llmsim.ErrInjected) {
		t.Fatalf("typed chain lost the root cause: %v", h.Err())
	}
	if st := s.Stats(); st.RetriesExhausted != 1 {
		t.Fatalf("stats = %+v, want one exhausted job", st)
	}
}

func TestJobDeadlineExceeded(t *testing.T) {
	se, s := schedTestbed(t, 2)
	s.EnableRecovery(FaultPolicy{JobDeadlineS: 5, Seed: 5})
	h, err := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	se.Run()
	if h.Status() != JobFailed {
		t.Fatalf("status = %v, want failed: the video job cannot finish in 5s", h.Status())
	}
	if code := ErrorCodeOf(h.Err()); code != CodeDeadlineExceeded {
		t.Fatalf("error code = %q, want %q (err: %v)", code, CodeDeadlineExceeded, h.Err())
	}
	if st := s.Stats(); st.DeadlinesExceeded != 1 {
		t.Fatalf("stats = %+v, want one deadline", st)
	}
}

func TestStageTimeoutWatchdogRecovers(t *testing.T) {
	se, s := schedTestbed(t, 2)
	s.EnableRecovery(FaultPolicy{StageTimeoutS: 20, Seed: 5})
	h, err := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	// Stall in-flight worker tasks far past the watchdog: without the
	// watchdog each stall would add 1000 simulated seconds.
	landed := injectEvery(se, s, workload.FaultEvent{
		Kind: workload.FaultStageTimeout, Pick: 0.5, DurationS: 1000,
	}, 2, 30, 4)
	se.Run()
	if *landed == 0 {
		t.Fatal("no stall landed on a busy worker")
	}
	if h.Status() != JobDone || h.Err() != nil {
		t.Fatalf("status = %v err = %v", h.Status(), h.Err())
	}
	st := s.Stats()
	if st.StageTimeouts == 0 {
		t.Fatalf("stats = %+v: stalls landed but the watchdog never fired", st)
	}
	if rep := h.Report(); rep.MakespanS >= 1000 {
		t.Fatalf("makespan %v: the job waited out a stall instead of cutting it short", rep.MakespanS)
	}
}

func TestInjectOnIdleSchedulerIsNoop(t *testing.T) {
	_, s := schedTestbed(t, 2)
	for _, kind := range []workload.FaultKind{
		workload.FaultEngineCrash, workload.FaultWorkerLoss,
		workload.FaultStageTimeout, workload.FaultCallError,
	} {
		if s.Inject(workload.FaultEvent{Kind: kind, Pick: 0.5, DurationS: 1}) {
			t.Fatalf("%s found a victim on an idle scheduler", kind)
		}
	}
	if st := s.Stats(); st.FaultsInjected != 0 {
		t.Fatalf("stats = %+v, want zero injected", st)
	}
}

func TestErrorCodeOf(t *testing.T) {
	cases := []struct {
		err  error
		want ErrorCode
	}{
		{nil, ""},
		{ErrCanceled, CodeCanceled},
		{&JobError{Code: CodeRetriesExhausted, Op: "t1", Err: errors.New("x")}, CodeRetriesExhausted},
		{&report.WindowCompactedError{}, CodeWindowCompacted},
		{errors.New("anything else"), CodeInternal},
	}
	for _, tc := range cases {
		if got := ErrorCodeOf(tc.err); got != tc.want {
			t.Fatalf("ErrorCodeOf(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}
