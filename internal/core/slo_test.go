package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/workflow"
)

func sloQualityVideoJob() workflow.Job {
	// MAX_QUALITY picks the large high-quality models, leaving the
	// degradation cascade real headroom (70B → 8B summarization is ~13×
	// cheaper at ~2× the latency).
	return workflow.Job{
		Description: "List objects shown in the videos",
		Inputs:      []workflow.Input{workflow.VideoInput("a.mov", 120, 30, 24)},
		Constraint:  workflow.MaxQuality,
	}
}

// The hysteresis property: over randomized pressure traces the overload
// controller never changes state on an observation inside the (low, high)
// band — engage requires reaching the high watermark, disengage requires
// falling back to the low one — and the whole decision sequence is a
// deterministic function of the trace (replaying it reproduces every
// transition and counter exactly).
func TestOverloadControllerHysteresisProperty(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ctrl := overloadController{high: 2, low: 1}
		p := 1.5
		trace := make([]float64, 0, 2000)
		states := make([]bool, 0, 2000)
		for i := 0; i < 2000; i++ {
			p += rng.Float64()*0.6 - 0.3
			if p < 0 {
				p = 0
			}
			if p > 3 {
				p = 3
			}
			trace = append(trace, p)
			ctrl.observe(p)
			states = append(states, ctrl.degraded)
		}
		for i := 1; i < len(states); i++ {
			if states[i] == states[i-1] {
				continue
			}
			if trace[i] > ctrl.low && trace[i] < ctrl.high {
				t.Fatalf("seed %d: state flapped to %v on in-band pressure %.3f at step %d",
					seed, states[i], trace[i], i)
			}
			if states[i] && trace[i] < ctrl.high {
				t.Fatalf("seed %d: engaged below the high watermark (%.3f) at step %d", seed, trace[i], i)
			}
			if !states[i] && trace[i] > ctrl.low {
				t.Fatalf("seed %d: disengaged above the low watermark (%.3f) at step %d", seed, trace[i], i)
			}
		}
		replay := overloadController{high: 2, low: 1}
		for i, p := range trace {
			replay.observe(p)
			if replay.degraded != states[i] {
				t.Fatalf("seed %d: replay diverged at step %d", seed, i)
			}
		}
		if replay.enters != ctrl.enters || replay.exits != ctrl.exits {
			t.Fatalf("seed %d: replay counters %d/%d, original %d/%d",
				seed, replay.enters, replay.exits, ctrl.enters, ctrl.exits)
		}
	}
}

func TestSLOShedAtQueueBound(t *testing.T) {
	se, s := schedTestbed(t, 1)
	s.EnableSLO(SLOConfig{
		TenantTiers: map[string]string{"alice": "bronze"},
		QueueBound:  1,
	})
	h1, err := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	// The first submission fills alice's one queue slot; the second finds
	// the bound reached and is shed synchronously — no handle, no JobID.
	h2, err := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	if h2 != nil || err == nil {
		t.Fatalf("expected shed, got handle %v err %v", h2, err)
	}
	if ErrorCodeOf(err) != CodeShedOverload {
		t.Fatalf("error code = %q, want shed_overload", ErrorCodeOf(err))
	}
	var je *JobError
	if !errors.As(err, &je) || je.Op != "admission" {
		t.Fatalf("shed error not a typed admission JobError: %v", err)
	}
	se.Run()
	if h1.Status() != JobDone {
		t.Fatalf("admitted job = %v, want done", h1.Status())
	}
	st := s.Stats()
	if st.Submitted != 1 || st.SLOShed != 1 {
		t.Fatalf("submitted %d shed %d, want 1/1", st.Submitted, st.SLOShed)
	}
	tenants := s.SLOTenants()
	if len(tenants) != 1 || tenants[0].Shed != 1 || tenants[0].Admitted != 1 || tenants[0].Class != "bronze" {
		t.Fatalf("tenant stats = %+v", tenants)
	}
}

func TestSLOBudgetExhausted(t *testing.T) {
	se, s := schedTestbed(t, 2)
	s.EnableSLO(SLOConfig{BudgetUSD: 1e-9})
	h1, err := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	se.Run()
	if h1.Status() != JobDone {
		t.Fatalf("first job = %v, want done", h1.Status())
	}
	// The first launch charged its plan's estimated cost, which dwarfs the
	// configured budget; the next submission is rejected at admission.
	if _, err := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true}); ErrorCodeOf(err) != CodeBudgetExhausted {
		t.Fatalf("error code = %q (%v), want budget_exhausted", ErrorCodeOf(err), err)
	}
	st := s.Stats()
	if st.SLOBudgetExhausted != 1 {
		t.Fatalf("SLOBudgetExhausted = %d, want 1", st.SLOBudgetExhausted)
	}
	tenants := s.SLOTenants()
	if len(tenants) != 1 || tenants[0].BudgetExhausted != 1 || tenants[0].CostSpentUSD <= 0 {
		t.Fatalf("tenant stats = %+v", tenants)
	}
}

func TestSLODegradeAtAdmissionUnderOverload(t *testing.T) {
	// Baseline arm: no SLO tiers, same jobs — records the undegraded cost.
	se0, s0 := schedTestbed(t, 1)
	var baseCost float64
	for i := 0; i < 3; i++ {
		h, err := s0.Submit("alice", sloQualityVideoJob(), SubmitOptions{RelaxFloor: true})
		if err != nil {
			t.Fatal(err)
		}
		h.OnDone(func(h *Handle) { baseCost += h.Execution().Plan().EstCostUSD })
	}
	se0.Run()

	se, s := schedTestbed(t, 1)
	s.EnableSLO(SLOConfig{
		TenantTiers:   map[string]string{"alice": "bronze"},
		HighWatermark: 1.5,
		LowWatermark:  0.5,
	})
	var cost float64
	handles := make([]*Handle, 0, 3)
	for i := 0; i < 3; i++ {
		h, err := s.Submit("alice", sloQualityVideoJob(), SubmitOptions{RelaxFloor: true})
		if err != nil {
			t.Fatal(err)
		}
		h.OnDone(func(h *Handle) { cost += h.Execution().Plan().EstCostUSD })
		handles = append(handles, h)
	}
	// Three queued jobs against one slot: pressure 3.0 crossed the 1.5
	// watermark during submission, so the controller is engaged before the
	// first job starts and bronze admissions take the degraded path.
	if !s.OverloadActive() {
		t.Fatal("overload controller not engaged at pressure 3.0")
	}
	se.Run()
	for i, h := range handles {
		if h.Status() != JobDone {
			t.Fatalf("job %d = %v (%v), want done", i, h.Status(), h.Err())
		}
	}
	st := s.Stats()
	if st.SLODegradedAdmits == 0 {
		t.Fatal("no degraded admissions under overload")
	}
	if cost >= baseCost {
		t.Fatalf("degraded cost $%.4f not below undegraded $%.4f", cost, baseCost)
	}
	// Draining the queue dropped pressure to 0 ≤ low watermark: the
	// controller must have disengaged (no flapping in between — the
	// property test above covers the band).
	if s.OverloadActive() {
		t.Fatal("overload controller still engaged after drain")
	}
	if st.OverloadEnters != 1 {
		t.Fatalf("OverloadEnters = %d, want 1", st.OverloadEnters)
	}
}

func TestSLOAttainmentCounters(t *testing.T) {
	se, s := schedTestbed(t, 2)
	s.EnableSLO(SLOConfig{
		Classes: map[string]SLOClass{
			"gold":   {Name: "gold", LatencyTargetS: 1e9},
			"bronze": {Name: "bronze", LatencyTargetS: 1e-9, Degradable: true},
		},
		DefaultClass: "gold",
		TenantTiers:  map[string]string{"bob": "bronze"},
	})
	ha, _ := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	hb, _ := s.Submit("bob", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	se.Run()
	if ha.Status() != JobDone || hb.Status() != JobDone {
		t.Fatalf("jobs = %v/%v, want done", ha.Status(), hb.Status())
	}
	st := s.Stats()
	if st.SLOMet != 1 || st.SLOMissed != 1 {
		t.Fatalf("met/missed = %d/%d, want 1/1", st.SLOMet, st.SLOMissed)
	}
	for _, ts := range s.SLOTenants() {
		switch ts.Tenant {
		case "alice":
			if ts.SLOMet != 1 || ts.SLOMissed != 0 {
				t.Fatalf("alice = %+v", ts)
			}
		case "bob":
			if ts.SLOMet != 0 || ts.SLOMissed != 1 {
				t.Fatalf("bob = %+v", ts)
			}
		}
	}
	if ha.SLOClass() != "gold" || hb.SLOClass() != "bronze" {
		t.Fatalf("classes = %q/%q", ha.SLOClass(), hb.SLOClass())
	}
}

func TestSLOUnknownClassRejected(t *testing.T) {
	_, s := schedTestbed(t, 2)
	s.EnableSLO(SLOConfig{})
	if _, err := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true, SLOClass: "platinum"}); err == nil {
		t.Fatal("unknown per-job SLO class accepted")
	}
}
