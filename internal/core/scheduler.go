package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/planner"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// The scheduler/executor split: Runtime (runtime.go) is the executor — it
// plans one job and drives its DAG against the shared cluster the moment
// Submit is called. Scheduler is the admission layer in front of it: jobs
// enter an admission queue, are released into the executor under a
// concurrency bound with fair-share ordering across tenants, and are tracked
// through first-class handles (submit → JobID, status, result, cancel). Many
// jobs admitted through one Scheduler share a single Runtime and therefore
// multiplex its serving engines, plan/decomposition caches and worker pools —
// the paper's sharing thesis applied to the service path.
//
// Like the Runtime, the Scheduler is single-threaded: every method must run
// on the goroutine driving the simulation engine (directly, or via
// sim.Loop.Post in daemon mode). In daemon mode the expensive half of
// admission — the configuration search — can be moved off that goroutine
// onto a plan-search worker pool with optimistic snapshot commit; see
// EnablePlanSearch (plansearch.go). The serial path is unchanged when the
// pool is not enabled.

// ErrCanceled is the terminal error of a canceled job.
var ErrCanceled = errors.New("core: job canceled")

// JobID identifies a job admitted through a Scheduler.
type JobID int

// JobStatus is a handle's lifecycle state.
type JobStatus int

// Job lifecycle states.
const (
	JobQueued JobStatus = iota
	JobRunning
	JobDone
	JobFailed
	JobCanceled
)

// String renders the status.
func (s JobStatus) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("JobStatus(%d)", int(s))
	}
}

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Handle tracks one job from admission to completion.
type Handle struct {
	s      *Scheduler
	id     JobID
	tenant string
	job    workflow.Job
	opts   SubmitOptions

	status      JobStatus
	submittedAt sim.Time
	startedAt   sim.Time
	exec        *Execution
	err         error
	onStart     []func(*Handle)
	onDone      []func(*Handle)
	onAttempt   func(AttemptRecord)

	// planReady gates admission: with off-loop plan search enabled, a queued
	// handle only becomes eligible once its search commits (true from the
	// start for serial schedulers and cache hits). prepared carries the
	// committed decomposition + plan for start; nil means plan inline.
	planReady bool
	prepared  *preparedPlan
	// reconfigInflight marks a running job with an off-loop re-plan between
	// dispatch and commit. At most one search per job is in flight: a second
	// would compare its hysteresis baseline against decisions the first may
	// have already replaced (rebalance passes move no generation, so the
	// commit-time generation check cannot catch that staleness).
	reconfigInflight bool
	// sloClass is the resolved SLO tier ("" with SLO tiers disabled); see
	// slo.go.
	sloClass string
}

// SLOClass returns the handle's resolved SLO tier ("" with tiers disabled).
func (h *Handle) SLOClass() string { return h.sloClass }

// ID returns the job's scheduler-scoped identifier.
func (h *Handle) ID() JobID { return h.id }

// Tenant returns the submitting tenant.
func (h *Handle) Tenant() string { return h.tenant }

// Job returns the submitted job.
func (h *Handle) Job() workflow.Job { return h.job }

// Status returns the current lifecycle state.
func (h *Handle) Status() JobStatus { return h.status }

// Err returns the terminal error of failed or canceled jobs.
func (h *Handle) Err() error { return h.err }

// Execution returns the underlying execution (nil until the job is released
// from the admission queue, and still nil if planning rejected it).
func (h *Handle) Execution() *Execution { return h.exec }

// Report returns the result once the job is done.
func (h *Handle) Report() *report.Report {
	if h.exec == nil || !h.exec.Done() {
		return nil
	}
	return h.exec.Report()
}

// QueueDelayS is simulated time spent in the admission queue.
func (h *Handle) QueueDelayS() float64 {
	if h.status == JobQueued {
		return h.s.se.Now().Sub(h.submittedAt).Seconds()
	}
	return h.startedAt.Sub(h.submittedAt).Seconds()
}

// OnStart registers a callback fired when the job leaves the admission
// queue (immediately when already past it). Jobs canceled while queued never
// start and never fire it.
func (h *Handle) OnStart(fn func(*Handle)) {
	if h.status == JobQueued {
		h.onStart = append(h.onStart, fn)
		return
	}
	if h.status != JobCanceled || h.exec != nil {
		fn(h)
	}
}

// OnDone registers a completion callback; it fires once for done, failed and
// canceled jobs alike (immediately when already terminal).
func (h *Handle) OnDone(fn func(*Handle)) {
	if h.status.Terminal() {
		fn(h)
		return
	}
	h.onDone = append(h.onDone, fn)
}

// OnAttempt registers an observer for the job's task-failure attempts
// (fired per recorded AttemptRecord; see faults.go). Register before the
// job starts; at most one observer.
func (h *Handle) OnAttempt(fn func(AttemptRecord)) {
	h.onAttempt = fn
	if h.exec != nil {
		h.exec.onAttempt = fn
	}
}

// Attempts returns the job's recorded attempt history (nil before start or
// when no task ever failed).
func (h *Handle) Attempts() []AttemptRecord {
	if h.exec == nil {
		return nil
	}
	return h.exec.Attempts()
}

// Cancel terminates the job: queued jobs leave the admission queue without
// running; running jobs stop (their in-flight simulated work is abandoned).
// It reports whether the job was still cancelable.
func (h *Handle) Cancel() bool {
	switch h.status {
	case JobQueued:
		h.s.removeQueued(h)
		h.s.canceled++
		h.startedAt = h.s.se.Now()
		h.finish(JobCanceled, ErrCanceled)
		return true
	case JobRunning:
		return h.exec.Cancel()
	default:
		return false
	}
}

func (h *Handle) finish(st JobStatus, err error) {
	h.status = st
	h.err = err
	for _, fn := range h.onDone {
		fn(h)
	}
	h.onDone = nil
}

// SchedulerStats is a point-in-time view of the admission layer.
type SchedulerStats struct {
	Submitted   int
	Completed   int
	Failed      int
	Canceled    int
	Running     int
	Queued      int
	PeakRunning int
	// Off-loop plan-search accounting (all zero for serial schedulers):
	// PlanSearches counts searches dispatched to the worker pool,
	// SingleflightHits counts submissions that joined an in-flight identical
	// search instead of starting their own, PlanConflicts counts admissions
	// whose searched plan was invalidated by a snapshot-generation change and
	// re-planned inline at commit, and PlanSearchInflight is the live gauge
	// of searches currently between dispatch and commit.
	PlanSearches       int
	SingleflightHits   int
	PlanConflicts      int
	PlanSearchInflight int
	// Reconfiguration accounting (all zero with the controller disabled):
	// Reconfigs counts running-job evaluations, ReconfigWins adopted
	// re-plans, ReconfigSkips evaluations that kept the current plan, and
	// ReconfigConflicts off-loop re-plans invalidated by generation drift.
	Reconfigs         int
	ReconfigWins      int
	ReconfigSkips     int
	ReconfigConflicts int
	// Failure-recovery accounting (all zero with recovery disabled):
	// TaskRetries counts retried task failures, RetriesExhausted jobs
	// failed on the attempt budget, DeadlinesExceeded jobs failed on their
	// deadline, Degradations adopted cheaper-implementation re-plans,
	// StageTimeouts watchdog firings, FaultsInjected applied fault events,
	// BreakerTrips total circuit-breaker trips and BreakerOpen the live
	// gauge of breakers currently not closed.
	TaskRetries       int
	RetriesExhausted  int
	DeadlinesExceeded int
	Degradations      int
	StageTimeouts     int
	FaultsInjected    int
	BreakerTrips      int
	BreakerOpen       int
	// SLO/overload accounting (all zero with SLO tiers disabled; see
	// slo.go): SLOShed counts submissions shed at the per-tenant queue
	// bound, SLOBudgetExhausted submissions rejected on the tenant cost
	// budget, SLODegradedAdmits jobs launched on a degraded cheaper plan,
	// SLOMet/SLOMissed completed jobs classified against their tier's
	// latency target, OverloadEnters/OverloadExits controller transitions
	// and OverloadActive the live controller state.
	SLOShed            int
	SLOBudgetExhausted int
	SLODegradedAdmits  int
	SLOMet             int
	SLOMissed          int
	OverloadEnters     int
	OverloadExits      int
	OverloadActive     bool
}

// Scheduler admits jobs into a shared Runtime.
type Scheduler struct {
	se *sim.Engine
	rt *Runtime
	// maxConcurrent bounds simultaneously-running jobs; further submissions
	// wait in the admission queue.
	maxConcurrent int

	nextID  JobID
	queue   []*Handle
	running int
	// runningSet holds the currently-admitted handles (≤ maxConcurrent of
	// them); the retention layer reads it to keep the telemetry watermark
	// behind every live job's execution window.
	runningSet map[JobID]*Handle
	// inFlight counts running jobs per tenant; admitted counts jobs ever
	// admitted per tenant. Together they order fair-share admission.
	inFlight map[string]int
	admitted map[string]int

	completed   int
	failed      int
	canceled    int
	peakRunning int

	// search is the off-loop plan-search pool (nil for serial schedulers);
	// planWorkers its size. The counters are owned by the engine goroutine.
	search           *planSearch
	planWorkers      int
	planSearches     int
	singleflightHits int
	planConflicts    int

	// reconfig is the mid-flight reconfiguration controller (nil when
	// disabled; see reconfig.go). Counters: evaluations of running jobs,
	// adopted re-plans, evaluations that kept the current plan, and off-loop
	// re-plans discarded for generation drift at commit.
	reconfig          *reconfigState
	reconfigs         int
	reconfigWins      int
	reconfigSkips     int
	reconfigConflicts int

	// faultsInjected counts fault events applied through Inject (counted
	// whether or not recovery is enabled — injection and recovery are
	// independent toggles).
	faultsInjected int

	// slo is the SLO-tier / overload-control state (nil when disabled; see
	// slo.go). Every hook is nil-guarded so the disabled path is untouched.
	slo *sloState

	// pumpFn is the method value s.pump materialized once: every submit and
	// settle defers it, and a fresh closure per Defer showed up in the
	// allocation profile.
	pumpFn func()
}

// NewScheduler builds the admission layer over a runtime.
func NewScheduler(se *sim.Engine, rt *Runtime, maxConcurrent int) *Scheduler {
	if maxConcurrent <= 0 {
		panic("core: non-positive scheduler concurrency limit")
	}
	s := &Scheduler{
		se:            se,
		rt:            rt,
		maxConcurrent: maxConcurrent,
		runningSet:    map[JobID]*Handle{},
		inFlight:      map[string]int{},
		admitted:      map[string]int{},
	}
	s.pumpFn = s.pump
	if NeutralSLO {
		s.EnableSLO(NeutralSLOConfig())
	}
	return s
}

// Runtime exposes the executor the scheduler feeds.
func (s *Scheduler) Runtime() *Runtime { return s.rt }

// Submit validates and enqueues a job for a tenant, returning its handle.
// Validation errors return synchronously; planning and execution errors
// surface on the handle.
func (s *Scheduler) Submit(tenant string, job workflow.Job, opts SubmitOptions) (*Handle, error) {
	if tenant == "" {
		return nil, fmt.Errorf("core: empty tenant")
	}
	if err := job.Validate(); err != nil {
		return nil, err
	}
	var sloClass string
	if s.slo != nil {
		// The SLO admission gate sheds synchronously — before a JobID or
		// handle exists — so a rejected submission can never strand: there
		// is nothing to drain.
		var err error
		if sloClass, err = s.sloAdmit(tenant, opts); err != nil {
			return nil, err
		}
	}
	s.nextID++
	h := &Handle{
		s:           s,
		id:          s.nextID,
		tenant:      tenant,
		job:         job,
		opts:        opts,
		status:      JobQueued,
		submittedAt: s.se.Now(),
		planReady:   true,
		sloClass:    sloClass,
	}
	if s.search != nil {
		// Off-loop admission: if the shard has already planned this exact
		// shape under the current capacity class, reuse it and stay eligible
		// immediately; otherwise dispatch a search — reusing a cached
		// decomposition when only the plan half missed — and hold the handle
		// back from admission until the search commits.
		jk, prep := s.rt.probePrepared(job, opts)
		if prep != nil && prep.plan != nil {
			h.prepared = prep
		} else {
			h.planReady = false
			var decomp *planner.Result
			if prep != nil {
				decomp = prep.decomp
			}
			s.search.dispatch(h, jk, decomp)
		}
	}
	s.queue = append(s.queue, h)
	s.updateOverload()
	s.se.Defer(s.pumpFn)
	return h, nil
}

// pump releases queued jobs into the executor up to the concurrency limit,
// fair-share: the tenant with the fewest in-flight jobs goes first, ties
// broken by the least total service received (jobs ever admitted), then
// submission order — so one tenant's burst cannot starve others. Jobs whose
// off-loop plan search has not committed yet are not eligible; their commit
// re-pumps.
func (s *Scheduler) pump() {
	// Plan-environment movement without a capacity/rebalance hook (profile
	// recalibration, library registration) is caught here, on the admission
	// path's natural cadence.
	s.checkReconfigGens()
	for s.running < s.maxConcurrent && len(s.queue) > 0 {
		idx := s.pickNext()
		if idx < 0 {
			return
		}
		h := s.queue[idx]
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
		s.start(h)
	}
}

// pickNext returns the index of the next admissible queued job, or -1 when
// every queued job is still waiting on its plan search.
func (s *Scheduler) pickNext() int {
	best := -1
	key := func(i int) (int, int) {
		t := s.queue[i].tenant
		return s.inFlight[t], s.admitted[t]
	}
	for i := 0; i < len(s.queue); i++ {
		if !s.queue[i].planReady {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		fi, ai := key(i)
		fb, ab := key(best)
		if fi < fb || (fi == fb && ai < ab) {
			best = i
		}
	}
	return best
}

func (s *Scheduler) start(h *Handle) {
	h.status = JobRunning
	h.startedAt = s.se.Now()
	s.running++
	s.runningSet[h.id] = h
	if s.running > s.peakRunning {
		s.peakRunning = s.running
	}
	s.inFlight[h.tenant]++
	s.admitted[h.tenant]++
	for _, fn := range h.onStart {
		fn(h)
	}
	h.onStart = nil
	var ex *Execution
	var err error
	if s.slo != nil && s.sloDegradeEligible(h) {
		// Overload admission: resolve the plan as usual, then try to swap
		// it for a degraded cheaper one before launch (slo.go).
		ex, err = s.startDegraded(h)
	} else if h.prepared != nil && h.prepared.valid(s.rt) {
		// Optimistic commit holds at launch time too: the searched (or
		// cache-probed) plan is still valid for the current capacity class —
		// launch without re-planning.
		ex, err = s.rt.launch(h.job, h.opts, h.prepared.decomp, h.prepared.plan)
	} else {
		if h.prepared != nil {
			// The fleet changed while the job waited in the admission queue:
			// the plan committed earlier is stale. Re-plan inline against
			// current state, exactly like the serial path.
			s.planConflicts++
		}
		ex, err = s.rt.Submit(h.job, h.opts)
	}
	h.prepared = nil
	if s.slo != nil {
		s.sloDequeued(h)
		s.sloStarted(h, ex)
	}
	if err != nil {
		s.settle(h, err)
		return
	}
	h.exec = ex
	if h.onAttempt != nil {
		ex.onAttempt = h.onAttempt
	}
	ex.OnDone(func(_ *report.Report, err error) {
		s.settle(h, err)
	})
}

// settle retires a released job (completed, failed or canceled mid-run) and
// re-pumps the admission queue.
func (s *Scheduler) settle(h *Handle, err error) {
	s.running--
	delete(s.runningSet, h.id)
	s.inFlight[h.tenant]--
	switch {
	case errors.Is(err, ErrCanceled):
		s.canceled++
		h.finish(JobCanceled, err)
	case err != nil:
		s.failed++
		h.finish(JobFailed, err)
	default:
		s.completed++
		h.finish(JobDone, nil)
	}
	if s.slo != nil {
		s.sloSettled(h)
		s.updateOverload()
	}
	s.se.Defer(s.pumpFn)
}

// removeQueued drops a handle from the admission queue.
func (s *Scheduler) removeQueued(h *Handle) {
	for i, q := range s.queue {
		if q == h {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			if s.slo != nil {
				s.sloDequeued(h)
				s.updateOverload()
			}
			return
		}
	}
}

// QueueDepth returns jobs waiting for admission.
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// MinRunningStartS returns the earliest start time among currently-running
// jobs, and whether any job is running. The retention layer clamps its
// compaction watermark to this so a live job's execution window (which
// report.Finalize integrates from its start) is never compacted from under
// it. Queued jobs need no clamp: they start at admission time, which is
// always at or after any watermark chosen from the past.
func (s *Scheduler) MinRunningStartS() (float64, bool) {
	if len(s.runningSet) == 0 {
		return 0, false
	}
	min := math.Inf(1)
	for _, h := range s.runningSet {
		if t := h.startedAt.Seconds(); t < min {
			min = t
		}
	}
	return min, true
}

// Running returns currently-admitted jobs.
func (s *Scheduler) Running() int { return s.running }

// Stats returns lifecycle counters.
func (s *Scheduler) Stats() SchedulerStats {
	st := SchedulerStats{
		Submitted:         int(s.nextID),
		Completed:         s.completed,
		Failed:            s.failed,
		Canceled:          s.canceled,
		Running:           s.running,
		Queued:            len(s.queue),
		PeakRunning:       s.peakRunning,
		PlanSearches:      s.planSearches,
		SingleflightHits:  s.singleflightHits,
		PlanConflicts:     s.planConflicts,
		Reconfigs:         s.reconfigs,
		ReconfigWins:      s.reconfigWins,
		ReconfigSkips:     s.reconfigSkips,
		ReconfigConflicts: s.reconfigConflicts,
		FaultsInjected:    s.faultsInjected,
	}
	if s.search != nil {
		st.PlanSearchInflight = len(s.search.inflight)
	}
	if rc := s.rt.recovery; rc != nil {
		st.TaskRetries = rc.taskRetries
		st.RetriesExhausted = rc.exhausted
		st.DeadlinesExceeded = rc.deadlineExceeded
		st.Degradations = rc.degradations
		st.StageTimeouts = rc.timeouts
	}
	st.BreakerOpen, st.BreakerTrips = s.rt.mgr.BreakerStats()
	if sl := s.slo; sl != nil {
		st.SLOShed = sl.shed
		st.SLOBudgetExhausted = sl.budgetExhausted
		st.SLODegradedAdmits = sl.degradedAdmits
		st.SLOMet = sl.sloMet
		st.SLOMissed = sl.sloMissed
		st.OverloadEnters = sl.ctrl.enters
		st.OverloadExits = sl.ctrl.exits
		st.OverloadActive = sl.ctrl.degraded
	}
	return st
}
