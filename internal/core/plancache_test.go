package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/hardware"
	"repro/internal/optimizer"
	"repro/internal/profiles"
	"repro/internal/sim"
	"repro/internal/workflow"
)

func cacheTestbed(t *testing.T) (*sim.Engine, *cluster.Cluster, *Runtime) {
	t.Helper()
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	cl.AddVM("vm1", hardware.NDv4SKUName, false)
	rt, err := New(Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	return se, cl, rt
}

func cacheTestJob(c workflow.Constraint) workflow.Job {
	return workflow.Job{
		Description: "List objects shown in the video",
		Inputs:      []workflow.Input{workflow.VideoInput("a.mov", 120, 30, 8)},
		Tasks:       []string{"Extract frames from the video", "Detect objects in the frames"},
		Constraint:  c,
	}
}

// TestPlanCacheReusesIdenticalSubmissions: two structurally-identical jobs
// must plan once, and the cached plan must be decision-identical to a fresh
// search.
func TestPlanCacheReusesIdenticalSubmissions(t *testing.T) {
	se, _, rt := cacheTestbed(t)

	ex1, err := rt.Submit(cacheTestJob(workflow.MinCost), SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	se.Run()
	if rt.PlanCacheHits() != 0 {
		t.Fatalf("first submission hit the cache (%d hits)", rt.PlanCacheHits())
	}

	ex2, err := rt.Submit(cacheTestJob(workflow.MinCost), SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	se.Run()
	if rt.PlanCacheHits() != 1 {
		t.Fatalf("identical resubmission missed the cache (%d hits)", rt.PlanCacheHits())
	}
	if !reflect.DeepEqual(ex1.Plan().Decisions, ex2.Plan().Decisions) {
		t.Fatal("cached plan decisions differ from the original search")
	}

	// A different constraint is a different key.
	if _, err := rt.Submit(cacheTestJob(workflow.MinLatency), SubmitOptions{RelaxFloor: true}); err != nil {
		t.Fatal(err)
	}
	se.Run()
	if rt.PlanCacheHits() != 1 {
		t.Fatalf("different constraint served from cache (%d hits)", rt.PlanCacheHits())
	}
}

// TestPlanCacheInvalidatesOnCapacityChange: growing the cluster must bypass
// the cached plan (the capacity class is part of the key).
func TestPlanCacheInvalidatesOnCapacityChange(t *testing.T) {
	se, cl, rt := cacheTestbed(t)

	if _, err := rt.Submit(cacheTestJob(workflow.MinLatency), SubmitOptions{RelaxFloor: true}); err != nil {
		t.Fatal(err)
	}
	se.Run()

	cl.AddVM("vm2", hardware.NDv4SKUName, false)
	if _, err := rt.Submit(cacheTestJob(workflow.MinLatency), SubmitOptions{RelaxFloor: true}); err != nil {
		t.Fatal(err)
	}
	se.Run()
	if rt.PlanCacheHits() != 0 {
		t.Fatalf("capacity change did not invalidate the plan cache (%d hits)", rt.PlanCacheHits())
	}
}

// TestPlanCacheInvalidatesOnProfileMutation: recalibrating a profile must
// force a fresh search (the store generation is part of the key).
func TestPlanCacheInvalidatesOnProfileMutation(t *testing.T) {
	se, _, rt := cacheTestbed(t)

	if _, err := rt.Submit(cacheTestJob(workflow.MinCost), SubmitOptions{RelaxFloor: true}); err != nil {
		t.Fatal(err)
	}
	se.Run()

	cfg := profiles.ResourceConfig{CPUCores: 4}
	p, ok := rt.Profiles().Get(agents.ImplOpenCV, cfg)
	if !ok {
		t.Fatalf("no %s profile for %v", agents.ImplOpenCV, cfg)
	}
	p.BaseS += 1
	if err := rt.Profiles().Put(p); err != nil {
		t.Fatal(err)
	}

	if _, err := rt.Submit(cacheTestJob(workflow.MinCost), SubmitOptions{RelaxFloor: true}); err != nil {
		t.Fatal(err)
	}
	se.Run()
	if rt.PlanCacheHits() != 0 {
		t.Fatalf("profile mutation did not invalidate the plan cache (%d hits)", rt.PlanCacheHits())
	}
}

// TestJobKeyInjective pins the encoding against a crafted collision: a float
// value must not absorb the next attribute's length prefix.
func TestJobKeyInjective(t *testing.T) {
	a := workflow.Job{
		Description: "d",
		Inputs: []workflow.Input{{Name: "i", Kind: workflow.InputDoc,
			Attrs: map[string]float64{"a": 1, "xyz=515:z23456789012345": 9}}},
	}
	b := workflow.Job{
		Description: "d",
		Inputs: []workflow.Input{{Name: "i", Kind: workflow.InputDoc,
			Attrs: map[string]float64{"a": 12, "xyz": 5, "z23456789012345": 9}}},
	}
	if jobKey(a, 0) == jobKey(b, 0) {
		t.Fatalf("distinct jobs share a decomposition-cache key: %q", jobKey(a, 0))
	}
	// Task-list boundaries must be injective too.
	c := workflow.Job{Description: "d", Tasks: []string{"a|t:b"}}
	d := workflow.Job{Description: "d", Tasks: []string{"a", "b"}}
	if jobKey(c, 0) == jobKey(d, 0) {
		t.Fatal("distinct task lists share a decomposition-cache key")
	}
}

// TestPlanCacheKeyInjective pins the DAG section of the plan-cache key
// against capability names crafted to mimic the separators.
func TestPlanCacheKeyInjective(t *testing.T) {
	mk := func(caps map[string]float64) *dag.Graph {
		g := dag.New()
		i := 0
		for c, w := range caps {
			g.MustAddNode(dag.Node{ID: dag.NodeID(fmt.Sprintf("n%d", i)), Capability: c, Work: w})
			i++
		}
		if err := g.Freeze(); err != nil {
			t.Fatal(err)
		}
		return g
	}
	a := mk(map[string]float64{"x=1;y": 2})
	b := mk(map[string]float64{"x": 1, "y": 2})
	snap := cluster.Snapshot{}
	opts := optimizer.Options{}
	if planCacheKey(a, snap, opts, 0, 0) == planCacheKey(b, snap, opts, 0, 0) {
		t.Fatal("distinct DAGs share a plan-cache key")
	}
}
