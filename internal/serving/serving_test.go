package serving

import "testing"

// TestRetentionBoundsTelemetry replays the default trace with a retention
// window a small fraction of the served history and asserts the
// bounded-memory claim end to end: every job completes, the served history
// spans ≥ 10 retention windows, and the retained footprint stays far below
// the unbounded baseline's peak (which grows with history).
func TestRetentionBoundsTelemetry(t *testing.T) {
	res, err := RunRetention(DefaultRetentionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Jobs || res.Failed != 0 {
		t.Fatalf("jobs lost under retention: %+v", res)
	}
	if res.HistoryOverRetainX < 10 {
		t.Fatalf("served history %.1f× retention, want ≥ 10× for the plateau claim", res.HistoryOverRetainX)
	}
	if res.CompactedPoints == 0 {
		t.Fatal("compaction never ran")
	}
	if res.PeakPoints <= 0 || res.UnboundedPeakPoints <= res.PeakPoints {
		t.Fatalf("retained peak %d not below unbounded peak %d", res.PeakPoints, res.UnboundedPeakPoints)
	}
	// The plateau: the unbounded pool's footprint grows with history; the
	// retained pool holds a small multiple of one retention window. 4× is a
	// loose floor (measured ~25×) that still fails if compaction stops
	// bounding memory.
	if res.GrowthContainedX < 4 {
		t.Fatalf("retained peak %d vs unbounded %d (%.1f×): telemetry no longer bounded",
			res.PeakPoints, res.UnboundedPeakPoints, res.GrowthContainedX)
	}
	if res.String() == "" {
		t.Fatal("empty rendering")
	}
}

// TestRunSmallTrace smoke-tests both architectures on a short trace: every
// job must complete through the HTTP surface in both modes.
func TestRunSmallTrace(t *testing.T) {
	opts := DefaultOptions()
	opts.Rate = 0.05
	opts.HorizonS = 200 // ~10 jobs
	opts.Clients = 4
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []ModeResult{res.Shared, res.PerRequest} {
		if m.Jobs == 0 || m.Completed != m.Jobs || m.Failed != 0 {
			t.Fatalf("%s: %+v", m.Mode, m)
		}
		if m.Throughput <= 0 || m.P95LatencyMs < m.P50LatencyMs {
			t.Fatalf("%s: inconsistent curve %+v", m.Mode, m)
		}
	}
	if res.ThroughputGainX <= 0 {
		t.Fatalf("gain = %v", res.ThroughputGainX)
	}
	if res.String() == "" {
		t.Fatal("empty rendering")
	}
}

// TestRunAdmissionSmallBurst smoke-tests the burst-admission harness: both
// arms must admit the full burst with no submission errors, dedup repeats
// through the singleflight layer, and keep conflict re-plans rare.
func TestRunAdmissionSmallBurst(t *testing.T) {
	opts := DefaultAdmissionOptions()
	opts.Jobs = 48
	opts.Shapes = 12
	opts.Trials = 1
	res, err := RunAdmission(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []AdmissionResult{res.Serial, res.Parallel} {
		if m.Jobs != opts.Jobs || m.SubmitErrors != 0 {
			t.Fatalf("%s: %+v", m.Mode, m)
		}
		if m.PlansPerSec <= 0 || m.SubmitP95Ms < m.SubmitP50Ms {
			t.Fatalf("%s: inconsistent curve %+v", m.Mode, m)
		}
	}
	if res.Serial.PlanSearches != 0 || res.Serial.SingleflightHits != 0 {
		t.Fatalf("serial arm dispatched searches: %+v", res.Serial)
	}
	if res.Parallel.PlanSearches == 0 {
		t.Fatalf("parallel arm never searched off-loop: %+v", res.Parallel)
	}
	// 12 shapes × 4 repeats: every repeat must dedup against the in-flight
	// search or probe the cache it populated — never search again.
	if res.Parallel.PlanSearches > opts.Shapes {
		t.Fatalf("searches %d exceed distinct shapes %d (dedup broken)",
			res.Parallel.PlanSearches, opts.Shapes)
	}
	if res.Parallel.ConflictFrac >= 0.10 {
		t.Fatalf("conflicts %.0f%% of admissions, want < 10%%", 100*res.Parallel.ConflictFrac)
	}
	if res.String() == "" {
		t.Fatal("empty rendering")
	}
}

// TestRunReconfigDeterministicGain is the cheap in-suite version of
// BenchmarkReconfig: both arms complete every job of the replayed trace, the
// controller adopts at least one re-plan, the enabled arm improves mean
// completion, and a replay reproduces the identical simulated metrics.
func TestRunReconfigDeterministicGain(t *testing.T) {
	res, err := RunReconfig(DefaultReconfigOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Off.Failed != 0 || res.On.Failed != 0 {
		t.Fatalf("failed jobs: off %d on %d", res.Off.Failed, res.On.Failed)
	}
	if res.Off.Reconfigs != 0 {
		t.Fatalf("off arm evaluated reconfigurations: %+v", res.Off)
	}
	if res.On.ReconfigWins == 0 {
		t.Fatalf("on arm adopted nothing: %+v", res.On)
	}
	if res.CompletionGainX <= 1 {
		t.Fatalf("no completion gain: %.3f (off %.1fs on %.1fs)",
			res.CompletionGainX, res.Off.MeanCompletionS, res.On.MeanCompletionS)
	}
	replay, err := RunReconfig(DefaultReconfigOptions())
	if err != nil {
		t.Fatal(err)
	}
	if replay.CompletionGainX != res.CompletionGainX || replay.On.MeanCompletionS != res.On.MeanCompletionS ||
		replay.On.EnergyWh != res.On.EnergyWh {
		t.Fatalf("replay diverged: %+v vs %+v", replay.On, res.On)
	}
}
