package serving

import "testing"

// TestRunSmallTrace smoke-tests both architectures on a short trace: every
// job must complete through the HTTP surface in both modes.
func TestRunSmallTrace(t *testing.T) {
	opts := DefaultOptions()
	opts.Rate = 0.05
	opts.HorizonS = 200 // ~10 jobs
	opts.Clients = 4
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []ModeResult{res.Shared, res.PerRequest} {
		if m.Jobs == 0 || m.Completed != m.Jobs || m.Failed != 0 {
			t.Fatalf("%s: %+v", m.Mode, m)
		}
		if m.Throughput <= 0 || m.P95LatencyMs < m.P50LatencyMs {
			t.Fatalf("%s: inconsistent curve %+v", m.Mode, m)
		}
	}
	if res.ThroughputGainX <= 0 {
		t.Fatalf("gain = %v", res.ThroughputGainX)
	}
	if res.String() == "" {
		t.Fatal("empty rendering")
	}
}
