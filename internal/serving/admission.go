// admission.go is the burst-admission harness behind BenchmarkAdmission: it
// replays a bursty multi-tenant submission storm against one runtime shard
// (engine + cluster + scheduler + sim.Loop, exactly the stack an api.Pool
// shard runs) twice — once with admission's plan search serialized inline on
// the loop goroutine (the pre-PR baseline) and once with the off-loop
// plan-search worker pool and optimistic snapshot commit — and reports
// plans/sec, submit-to-admission latency percentiles and the
// singleflight/conflict counters. Replayed bursts in the spirit of CGReplay:
// the same trace drives both arms, so the ratio isolates the admission path.
package serving

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// AdmissionOptions shapes the burst.
type AdmissionOptions struct {
	// Jobs is the burst size; Shapes the number of structurally-distinct job
	// shapes in it (each repeats Jobs/Shapes times, interleaved — repeats are
	// what the singleflight layer and the plan caches absorb, distinct shapes
	// are what the worker pool parallelizes).
	Jobs   int
	Shapes int
	// Tenants spreads the burst across this many tenants (fair-share
	// admission interleaves them).
	Tenants int
	// VMs sizes the shard's cluster in ND96amsr_A100_v4 VMs.
	VMs int
	// PlanWorkers sizes the parallel arm's worker pool (0 = GOMAXPROCS).
	PlanWorkers int
	// MaxConcurrent bounds jobs running concurrently in the shard; 0 admits
	// the whole burst (admission-bound, not execution-bound — the regime the
	// benchmark isolates).
	MaxConcurrent int
	// Trials replays the burst this many times per arm, keeping the
	// best-plans/sec trial (wall-clock noise is one-sided; default 3).
	Trials int
}

// DefaultAdmissionOptions is the benchmark configuration: a 256-job burst of
// 64 distinct shapes across 8 tenants.
func DefaultAdmissionOptions() AdmissionOptions {
	return AdmissionOptions{
		Jobs:    256,
		Shapes:  64,
		Tenants: 8,
		VMs:     2,
		Trials:  3,
	}
}

// AdmissionResult is the measurement for one admission architecture.
type AdmissionResult struct {
	Mode    string
	Workers int
	Jobs    int
	// WallS is the wall-clock time from the first submission post until the
	// last job of the burst was admitted (planned and started).
	WallS       float64
	PlansPerSec float64
	// SubmitP50Ms/P95Ms are per-job submit→admission latencies.
	SubmitP50Ms float64
	SubmitP95Ms float64
	// Scheduler counters after the burst (zero in the serial arm).
	PlanSearches     int
	SingleflightHits int
	PlanConflicts    int
	// ConflictFrac is PlanConflicts over admissions.
	ConflictFrac float64
	// SubmitErrors counts synchronous submission failures (must be zero).
	SubmitErrors int
}

// AdmissionComparison pits parallel off-loop admission against the serial
// inline baseline on the same burst.
type AdmissionComparison struct {
	Serial   AdmissionResult
	Parallel AdmissionResult
	// SpeedupX = Parallel.PlansPerSec / Serial.PlansPerSec.
	SpeedupX float64
}

// admissionJob builds the shape-th distinct job of the burst: a newsfeed
// workflow whose topic fan-out and quality floor vary per shape, so every
// shape decomposes to a different DAG and keys a different plan search.
func admissionJob(shape int) workflow.Job {
	inputs := []workflow.Input{{Name: fmt.Sprintf("user-%d", shape), Kind: workflow.InputUser}}
	for t := 0; t <= shape%3; t++ {
		inputs = append(inputs, workflow.Input{
			Name:  fmt.Sprintf("topic-%d-%d", shape, t),
			Kind:  workflow.InputTopic,
			Attrs: map[string]float64{"queries": float64(2 + shape%4)},
		})
	}
	return workflow.Job{
		Description: fmt.Sprintf("Generate social media newsfeed variant %d", shape),
		Inputs:      inputs,
		Constraint:  workflow.MinLatency,
		// The jitter keeps every shape's plan key distinct without changing
		// which candidates clear the floor.
		MinQuality: 0.05 + float64(shape)*1e-9,
	}
}

// RunAdmission replays the burst through both admission architectures.
func RunAdmission(opts AdmissionOptions) (*AdmissionComparison, error) {
	if opts.Jobs <= 0 || opts.Shapes <= 0 || opts.Shapes > opts.Jobs || opts.Tenants <= 0 {
		return nil, fmt.Errorf("serving: invalid admission options %+v", opts)
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 1
	}
	best := func(parallel bool) (AdmissionResult, error) {
		var bestRes AdmissionResult
		for i := 0; i < trials; i++ {
			res, err := runAdmissionArm(opts, parallel)
			if err != nil {
				return AdmissionResult{}, err
			}
			if i == 0 || res.PlansPerSec > bestRes.PlansPerSec {
				bestRes = res
			}
		}
		return bestRes, nil
	}
	serial, err := best(false)
	if err != nil {
		return nil, err
	}
	parallel, err := best(true)
	if err != nil {
		return nil, err
	}
	cmp := &AdmissionComparison{Serial: serial, Parallel: parallel}
	if serial.PlansPerSec > 0 {
		cmp.SpeedupX = parallel.PlansPerSec / serial.PlansPerSec
	}
	return cmp, nil
}

// runAdmissionArm replays the burst against one shard and measures the
// wall-clock admission curve.
func runAdmissionArm(opts AdmissionOptions, parallel bool) (AdmissionResult, error) {
	runtime.GC() // keep one arm's garbage off the other arm's clock
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	vms := opts.VMs
	if vms <= 0 {
		vms = 2
	}
	for v := 0; v < vms; v++ {
		cl.AddVM(fmt.Sprintf("vm%d", v), hardware.NDv4SKUName, false)
	}
	rt, err := core.New(core.Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		return AdmissionResult{}, err
	}
	maxc := opts.MaxConcurrent
	if maxc <= 0 {
		maxc = opts.Jobs
	}
	sched := core.NewScheduler(se, rt, maxc)
	loop := sim.NewLoop(se)
	mode := "serial"
	if parallel {
		sched.EnablePlanSearch(loop, opts.PlanWorkers)
		mode = "parallel"
	}
	go loop.Run()

	type timing struct{ submit, start time.Time }
	timings := make([]timing, opts.Jobs)
	done := make(chan struct{})
	started, submitErrs := 0, 0
	t0 := time.Now()
	for i := 0; i < opts.Jobs; i++ {
		i := i
		job := admissionJob(i % opts.Shapes)
		tenant := fmt.Sprintf("tenant-%d", i%opts.Tenants)
		timings[i].submit = time.Now()
		if !loop.Post(func() {
			// arrived counts a job as admitted for the burst clock; planning
			// failures would count too (none occur), so an error cannot hang
			// the harness.
			arrived := func() {
				started++
				if started == opts.Jobs {
					close(done)
				}
			}
			h, err := sched.Submit(tenant, job, core.SubmitOptions{RelaxFloor: true, KeepEngines: true})
			if err != nil {
				submitErrs++
				arrived()
				return
			}
			h.OnStart(func(*core.Handle) {
				timings[i].start = time.Now()
				arrived()
			})
		}) {
			return AdmissionResult{}, fmt.Errorf("serving: admission loop closed mid-burst")
		}
	}
	<-done
	wallS := time.Since(t0).Seconds()

	var st core.SchedulerStats
	statsDone := make(chan struct{})
	loop.Post(func() { st = sched.Stats(); close(statsDone) })
	<-statsDone
	loop.Close() // drain: the admitted burst runs to completion
	sched.StopPlanSearch()

	res := AdmissionResult{
		Mode:             mode,
		Workers:          sched.PlanWorkers(),
		Jobs:             opts.Jobs,
		WallS:            wallS,
		PlanSearches:     st.PlanSearches,
		SingleflightHits: st.SingleflightHits,
		PlanConflicts:    st.PlanConflicts,
		SubmitErrors:     submitErrs,
	}
	if wallS > 0 {
		res.PlansPerSec = float64(opts.Jobs) / wallS
	}
	res.ConflictFrac = float64(st.PlanConflicts) / float64(opts.Jobs)
	lats := make([]float64, 0, opts.Jobs)
	for _, tm := range timings {
		if tm.start.IsZero() {
			continue
		}
		lats = append(lats, float64(tm.start.Sub(tm.submit).Microseconds())/1000)
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		res.SubmitP50Ms = percentile(lats, 0.50)
		res.SubmitP95Ms = percentile(lats, 0.95)
	}
	return res, nil
}

// String renders the comparison.
func (c *AdmissionComparison) String() string {
	var b []byte
	f := func(format string, args ...any) { b = append(b, fmt.Sprintf(format, args...)...) }
	f("Burst admission on one shard (wall clock)\n")
	f("%-10s %8s %6s %10s %12s %10s %10s %9s %9s %9s\n",
		"mode", "workers", "jobs", "wall(s)", "plans/s", "p50(ms)", "p95(ms)", "searches", "sfhits", "conflicts")
	for _, m := range []AdmissionResult{c.Serial, c.Parallel} {
		f("%-10s %8d %6d %10.3f %12.0f %10.2f %10.2f %9d %9d %9d\n",
			m.Mode, m.Workers, m.Jobs, m.WallS, m.PlansPerSec,
			m.SubmitP50Ms, m.SubmitP95Ms, m.PlanSearches, m.SingleflightHits, m.PlanConflicts)
	}
	f("Off-loop admission speedup: %.2fx\n", c.SpeedupX)
	return string(b)
}
