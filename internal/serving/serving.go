// Package serving is the load harness for the sharded AIWaaS daemon: it
// replays a mixed-tenant Poisson trace through the real HTTP surface
// (httptest transport, concurrent clients) against both serving
// architectures — the long-lived shared runtime pool and the per-request
// throwaway-testbed baseline — and reports wall-clock throughput, latency
// percentiles and the multiplexing gain of sharing. It lives outside
// internal/experiments because the experiments package is itself served by
// internal/api (importing api from there would cycle).
package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/workflow"
	"repro/internal/workload"
)

// Options shapes the replay.
type Options struct {
	// Rate and HorizonS parameterize the Poisson trace (jobs/s of simulated
	// arrival time; the replay itself submits as fast as clients allow).
	Rate     float64
	HorizonS float64
	Seed     int64
	// Mix is the request mix (workload.ServiceMix when zero). Its tenant
	// population should be at least the shard count or hashing leaves
	// shards idle.
	Mix workload.MixSpec
	// Shards / VMsPerShard / MaxConcurrentPerShard size the shared pool.
	Shards                int
	VMsPerShard           int
	MaxConcurrentPerShard int
	// Clients is the number of concurrent HTTP submitters.
	Clients int
	// Trials replays the trace this many times per mode and keeps each
	// mode's best-throughput trial (default 3). Wall-clock noise on a busy
	// host is one-sided — slowdowns, never speedups — so best-of-N is the
	// stable estimator of what each architecture can actually sustain.
	Trials int
}

// DefaultOptions is the benchmark configuration: ~150 mixed jobs over the
// eight-tenant service mix on two shards.
func DefaultOptions() Options {
	return Options{
		Rate:                  0.25,
		HorizonS:              600,
		Seed:                  11,
		Mix:                   workload.ServiceMix(),
		Shards:                2,
		VMsPerShard:           2,
		MaxConcurrentPerShard: 4,
		Clients:               8,
		Trials:                3,
	}
}

// ModeResult is the measurement for one serving architecture.
type ModeResult struct {
	Mode          string
	Jobs          int
	Completed     int
	Failed        int
	WallS         float64
	Throughput    float64 // completed jobs per wall-clock second
	MeanLatencyMs float64
	P50LatencyMs  float64
	P95LatencyMs  float64
}

// Result compares shared-runtime serving against per-request testbeds on the
// same trace.
type Result struct {
	Shared     ModeResult
	PerRequest ModeResult
	// ThroughputGainX = Shared.Throughput / PerRequest.Throughput — the
	// serving-path analogue of the paper's multiplexing gain.
	ThroughputGainX float64
}

// Run replays the trace through both architectures.
func Run(opts Options) (*Result, error) {
	trace, err := buildTrace(opts)
	if err != nil {
		return nil, err
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 1
	}
	best := func(mode string, cfg api.PoolConfig) (ModeResult, error) {
		var bestRes ModeResult
		for i := 0; i < trials; i++ {
			res, err := runMode(mode, cfg, trace, opts.Clients)
			if err != nil {
				return ModeResult{}, err
			}
			// Seed with the first trial so an all-failed run still reports
			// its job and failure counts instead of a zero value.
			if i == 0 || res.Throughput > bestRes.Throughput {
				bestRes = res
			}
		}
		return bestRes, nil
	}
	shared, err := best("shared", api.PoolConfig{
		Shards:                opts.Shards,
		VMsPerShard:           opts.VMsPerShard,
		MaxConcurrentPerShard: opts.MaxConcurrentPerShard,
	})
	if err != nil {
		return nil, err
	}
	perReq, err := best("per-request", api.PoolConfig{PerRequest: true})
	if err != nil {
		return nil, err
	}
	res := &Result{Shared: shared, PerRequest: perReq}
	if perReq.Throughput > 0 {
		res.ThroughputGainX = shared.Throughput / perReq.Throughput
	}
	return res, nil
}

// buildTrace renders the workload trace to ready-to-send request bodies.
func buildTrace(opts Options) ([][]byte, error) {
	mix := opts.Mix
	if len(mix.Tenants) == 0 {
		mix = workload.ServiceMix()
	}
	arrivals, err := workload.PoissonTrace(mix, opts.Rate, opts.HorizonS, opts.Seed)
	if err != nil {
		return nil, err
	}
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("serving: empty trace (rate %v over %v s)", opts.Rate, opts.HorizonS)
	}
	out := make([][]byte, 0, len(arrivals))
	for _, arr := range arrivals {
		body, err := json.Marshal(requestFrom(arr.Tenant, arr.Job))
		if err != nil {
			return nil, err
		}
		out = append(out, body)
	}
	return out, nil
}

// requestFrom maps a generated workload job onto the HTTP request schema.
func requestFrom(tenant string, job workflow.Job) api.JobRequest {
	req := api.JobRequest{
		Tenant:      tenant,
		Description: job.Description,
		Constraint:  strings.ToUpper(job.Constraint.String()),
		MinQuality:  job.MinQuality,
		Tasks:       job.Tasks,
		Wait:        true,
	}
	for _, in := range job.Inputs {
		req.Inputs = append(req.Inputs, api.InputRequest{
			Name:  in.Name,
			Kind:  string(in.Kind),
			Attrs: in.Attrs,
		})
	}
	return req
}

// runMode replays the trace against one architecture with opts.Clients
// concurrent submitters and measures the wall-clock service curve.
func runMode(mode string, cfg api.PoolConfig, trace [][]byte, clients int) (ModeResult, error) {
	// Settle the heap so one mode's garbage is not collected on the other
	// mode's clock.
	runtime.GC()
	server, err := api.NewServer(cfg)
	if err != nil {
		return ModeResult{}, err
	}
	srv := httptest.NewServer(server)
	defer func() {
		srv.Close()
		server.Close()
	}()
	if clients <= 0 {
		clients = 8
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}}
	defer client.CloseIdleConnections()

	work := make(chan []byte)
	latencies := make([]float64, 0, len(trace))
	var mu sync.Mutex
	var completed, failed int
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for body := range work {
				t0 := time.Now()
				resp, err := client.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				latMs := float64(time.Since(t0).Microseconds()) / 1000
				ok := false
				if err == nil {
					// wait:true means a 200 carries the finished result; like
					// any load generator, drain the body without decoding it.
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					ok = resp.StatusCode == http.StatusOK
				}
				mu.Lock()
				if ok {
					completed++
					latencies = append(latencies, latMs)
				} else {
					failed++
				}
				mu.Unlock()
			}
		}()
	}
	for _, body := range trace {
		work <- body
	}
	close(work)
	wg.Wait()
	wallS := time.Since(start).Seconds()

	res := ModeResult{
		Mode:      mode,
		Jobs:      len(trace),
		Completed: completed,
		Failed:    failed,
		WallS:     wallS,
	}
	if wallS > 0 {
		res.Throughput = float64(completed) / wallS
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		sum := 0.0
		for _, l := range latencies {
			sum += l
		}
		res.MeanLatencyMs = sum / float64(len(latencies))
		res.P50LatencyMs = percentile(latencies, 0.50)
		res.P95LatencyMs = percentile(latencies, 0.95)
	}
	return res, nil
}

// percentile reads the p-quantile from sorted samples (nearest-rank:
// ceil(p·n)-1, so small sample sets report from the tail, not below it).
func percentile(sorted []float64, p float64) float64 {
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders the comparison.
func (r *Result) String() string {
	var b strings.Builder
	b.WriteString("Serving architectures on the mixed-tenant trace (wall clock, HTTP surface)\n")
	fmt.Fprintf(&b, "%-12s %6s %6s %6s %10s %12s %10s %10s\n",
		"mode", "jobs", "done", "fail", "wall(s)", "jobs/s", "p50(ms)", "p95(ms)")
	for _, m := range []ModeResult{r.Shared, r.PerRequest} {
		fmt.Fprintf(&b, "%-12s %6d %6d %6d %10.2f %12.1f %10.2f %10.2f\n",
			m.Mode, m.Jobs, m.Completed, m.Failed, m.WallS, m.Throughput,
			m.P50LatencyMs, m.P95LatencyMs)
	}
	fmt.Fprintf(&b, "Shared-runtime throughput gain: %.2fx\n", r.ThroughputGainX)
	return b.String()
}
