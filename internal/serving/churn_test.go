package serving

import (
	"fmt"
	"testing"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// TestShardChurnPreemptReloadNeverStrands drives a full serving-shard stack
// (engine + cluster + scheduler + sim.Loop + off-loop plan search + the
// reconfiguration controller + the rebalancing loop) through the worst churn
// sequence: the manager rebalances engines while jobs are in flight, then the
// spot VM hosting the engines is preempted, forcing an EngineReloadDelayS
// rebuild onto the surviving VM. Every job must reach a terminal state —
// complete or re-plan, never strand — and the suite runs under -race in CI,
// so the loop/worker-pool handoffs are exercised concurrently.
func TestShardChurnPreemptReloadNeverStrands(t *testing.T) {
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	// Engines place onto vm0 (first provisioned wins ties for most-free), so
	// preempting it mid-run forces the reload path; vm1 survives.
	cl.AddVM("vm0", hardware.NDv4SKUName, true)
	cl.AddVM("vm1", hardware.NDv4SKUName, false)
	rt, err := core.New(core.Config{
		Engine: se, Cluster: cl, Library: agents.DefaultLibrary(),
		RebalancePeriod: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := core.NewScheduler(se, rt, 8)
	loop := sim.NewLoop(se)
	sched.EnablePlanSearch(loop, 2)
	sched.EnableReconfig(core.ReconfigConfig{})
	go loop.Run()

	const jobs = 6
	done := make(chan *core.Handle, jobs)
	for i := 0; i < jobs; i++ {
		i := i
		if !loop.Post(func() {
			job := workflow.Job{
				Description: "List objects shown in the videos",
				Inputs:      []workflow.Input{workflow.VideoInput(fmt.Sprintf("v%d.mov", i), 240, 30, 24)},
				Constraint:  workflow.MinLatency,
				MinQuality:  0.9,
			}
			h, err := sched.Submit(fmt.Sprintf("tenant-%d", i%3), job, core.SubmitOptions{RelaxFloor: true, KeepEngines: true})
			if err != nil {
				t.Error(err)
				done <- nil
				return
			}
			h.OnDone(func(h *core.Handle) { done <- h })
		}) {
			t.Fatal("loop closed before submission")
		}
	}
	// Churn lands mid-flight: a manual rebalance pass (on top of the periodic
	// loop), then the spot eviction that kills the engines' VM, then fresh
	// capacity that the reconfiguration controller can re-plan onto.
	if !loop.Post(func() {
		se.After(10, func() { rt.Manager().Rebalance() })
		se.After(15, func() { cl.PreemptVM("vm0") })
		se.After(20, func() { cl.AddVM("vm2", hardware.NDv4SKUName, false) })
	}) {
		t.Fatal("loop closed before churn injection")
	}

	for i := 0; i < jobs; i++ {
		h := <-done
		if h == nil {
			continue // submit error already reported
		}
		if !h.Status().Terminal() {
			t.Fatalf("job %v stranded in %v", h.ID(), h.Status())
		}
		if h.Status() != core.JobDone {
			t.Errorf("job %v = %v err = %v", h.ID(), h.Status(), h.Err())
		}
	}
	loop.Close()
	sched.StopPlanSearch()
	st := sched.Stats()
	if st.Completed != jobs {
		t.Fatalf("completed %d/%d: %+v", st.Completed, jobs, st)
	}
}
