// faults.go is the chaos harness behind BenchmarkFaults: it replays the same
// bursty job mix and the same seeded fault trace (engine crashes, worker
// losses, stage stalls, transient call errors) against one runtime shard
// twice — once with the failure-recovery subsystem enabled and once without —
// and compares goodput: jobs completed successfully within a fixed simulated
// horizon. Both arms run entirely inside the simulation, so for fixed seeds
// the comparison is deterministic and machine-independent and the recovery
// gain can be gated in CI.
package serving

import (
	"fmt"
	"sort"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FaultsOptions shapes the chaos replay.
type FaultsOptions struct {
	// Rate/HorizonS/Seed parameterize the Poisson job burst; Mix its shape
	// (the video-heavy MinLatency reconfig mix when zero).
	Rate     float64
	HorizonS float64
	Seed     int64
	Mix      workload.MixSpec
	// VMs is the fixed on-demand fleet.
	VMs int
	// MaxConcurrent bounds jobs admitted concurrently (0 admits the whole
	// burst).
	MaxConcurrent int
	// RebalancePeriodS enables the manager's engine-rebalancing loop in
	// both arms (0 disables).
	RebalancePeriodS float64
	// Faults is the injected fault trace spec (zero selects the default:
	// call-error dominated, with a sprinkle of crashes, worker losses and
	// stalls). The identical trace replays in both arms.
	Faults workload.FaultSpec
	// Policy is the recovery-on arm's fault policy (zero fields select the
	// core defaults).
	Policy core.FaultPolicy
	// MeasureHorizonS is the goodput window: jobs count toward goodput only
	// if they complete successfully by this simulated time. Both arms still
	// run to full drain (for the zero-stranded check); the window just makes
	// the arms comparable on equal terms.
	MeasureHorizonS float64
}

// DefaultFaultsOptions is the benchmark configuration: the reconfig job
// burst on a fixed two-VM fleet, under a fault trace dominated by transient
// call errors — the fault class that is terminal without recovery and cheap
// to retry with it.
func DefaultFaultsOptions() FaultsOptions {
	return FaultsOptions{
		Rate:             0.4,
		HorizonS:         50,
		Seed:             7,
		VMs:              2,
		MaxConcurrent:    4,
		RebalancePeriodS: 30,
		Faults: workload.FaultSpec{
			EngineCrashRate:  0.01,
			WorkerLossRate:   0.01,
			StageTimeoutRate: 0.01,
			CallErrorRate:    0.08,
			StallS:           60,
			CrashReloadS:     8,
			HorizonS:         240,
			Seed:             11,
		},
		Policy: core.FaultPolicy{
			JobDeadlineS: 1800,
			Seed:         13,
		},
		MeasureHorizonS: 600,
	}
}

// FaultsArm is the measurement for one arm of the comparison.
type FaultsArm struct {
	Mode      string
	Jobs      int
	Completed int
	Failed    int
	// Goodput counts jobs completed successfully by MeasureHorizonS.
	Goodput int
	// Stranded counts jobs in no terminal state after the simulation
	// drained — always zero unless recovery leaks a job.
	Stranded int
	// MeanCompletionS averages submit→done over successful jobs only;
	// MakespanS is the last successful completion.
	MeanCompletionS float64
	MakespanS       float64
	// Injection and recovery counters (retries and breaker state are zero
	// in the off arm).
	FaultsInjected    int
	TaskRetries       int
	RetriesExhausted  int
	DeadlinesExceeded int
	Degradations      int
	StageTimeouts     int
	BreakerTrips      int
}

// FaultsComparison pits recovery-on against recovery-off on the same
// replayed job burst and fault trace.
type FaultsComparison struct {
	Off FaultsArm
	On  FaultsArm
	// GoodputGainX = On.Goodput / Off.Goodput.
	GoodputGainX float64
}

// RunFaults replays the burst and fault trace through both arms. Job
// failures are expected (they are the off arm's whole story) and do not
// error; a stranded job — one the drain left in a non-terminal state — does.
func RunFaults(opts FaultsOptions) (*FaultsComparison, error) {
	mix := opts.Mix
	if len(mix.Tenants) == 0 {
		mix = reconfigMix()
	}
	arrivals, err := workload.PoissonTrace(mix, opts.Rate, opts.HorizonS, opts.Seed)
	if err != nil {
		return nil, err
	}
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("serving: empty faults job trace")
	}
	faults, err := workload.FaultTrace(opts.Faults)
	if err != nil {
		return nil, err
	}
	off, err := runFaultsArm(opts, arrivals, faults, false)
	if err != nil {
		return nil, err
	}
	on, err := runFaultsArm(opts, arrivals, faults, true)
	if err != nil {
		return nil, err
	}
	cmp := &FaultsComparison{Off: off, On: on}
	if off.Goodput > 0 {
		cmp.GoodputGainX = float64(on.Goodput) / float64(off.Goodput)
	}
	return cmp, nil
}

// runFaultsArm replays the traces against one freshly-provisioned shard
// stack, entirely in simulated time.
func runFaultsArm(opts FaultsOptions, arrivals []workload.Arrival, faults []workload.FaultEvent, recover bool) (FaultsArm, error) {
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	vms := opts.VMs
	if vms <= 0 {
		vms = 2
	}
	for v := 0; v < vms; v++ {
		cl.AddVM(fmt.Sprintf("vm%d", v), hardware.NDv4SKUName, false)
	}
	rt, err := core.New(core.Config{
		Engine: se, Cluster: cl, Library: agents.DefaultLibrary(),
		RebalancePeriod: sim.Duration(opts.RebalancePeriodS),
	})
	if err != nil {
		return FaultsArm{}, err
	}
	maxc := opts.MaxConcurrent
	if maxc <= 0 {
		maxc = len(arrivals)
	}
	sched := core.NewScheduler(se, rt, maxc)
	if recover {
		// Recovery rides the reconfiguration path: a failure is a capacity
		// event, and the re-plan moves remaining stages off the unhealthy
		// binding while the failed task waits out its backoff.
		sched.EnableReconfig(core.ReconfigConfig{})
		sched.EnableRecovery(opts.Policy)
	}

	arm := FaultsArm{Mode: "recovery-off", Jobs: len(arrivals)}
	if recover {
		arm.Mode = "recovery-on"
	}
	var handles []*core.Handle
	var completions []float64
	for _, arr := range arrivals {
		arr := arr
		se.After(sim.Duration(arr.AtS), func() {
			h, err := sched.Submit(arr.Tenant, arr.Job, core.SubmitOptions{RelaxFloor: true, KeepEngines: true})
			if err != nil {
				arm.Failed++
				return
			}
			handles = append(handles, h)
			h.OnDone(func(h *core.Handle) {
				if h.Status() != core.JobDone {
					arm.Failed++
					return
				}
				arm.Completed++
				done := se.Now().Seconds()
				completions = append(completions, done-arr.AtS)
				if done <= opts.MeasureHorizonS {
					arm.Goodput++
				}
				if done > arm.MakespanS {
					arm.MakespanS = done
				}
			})
		})
	}
	for _, ev := range faults {
		ev := ev
		se.After(sim.Duration(ev.AtS), func() { sched.Inject(ev) })
	}
	se.Run()

	// Zero-stranded contract: after a full drain every submitted job must
	// have reached a terminal state — recovery may fail a job, but it may
	// never leave one hanging.
	for _, h := range handles {
		switch h.Status() {
		case core.JobDone, core.JobFailed, core.JobCanceled:
		default:
			arm.Stranded++
		}
	}
	if arm.Stranded > 0 {
		return arm, fmt.Errorf("serving: faults arm %s stranded %d of %d jobs",
			arm.Mode, arm.Stranded, len(arrivals))
	}
	if len(completions) > 0 {
		sum := 0.0
		for _, c := range completions {
			sum += c
		}
		arm.MeanCompletionS = sum / float64(len(completions))
		sort.Float64s(completions)
	}
	st := sched.Stats()
	arm.FaultsInjected = st.FaultsInjected
	arm.TaskRetries = st.TaskRetries
	arm.RetriesExhausted = st.RetriesExhausted
	arm.DeadlinesExceeded = st.DeadlinesExceeded
	arm.Degradations = st.Degradations
	arm.StageTimeouts = st.StageTimeouts
	arm.BreakerTrips = st.BreakerTrips
	return arm, nil
}

// String renders the comparison.
func (c *FaultsComparison) String() string {
	var b []byte
	f := func(format string, args ...any) { b = append(b, fmt.Sprintf(format, args...)...) }
	f("Fault injection and recovery (simulated time, replayed traces)\n")
	f("%-14s %6s %8s %6s %8s %8s %12s %7s %8s %6s\n",
		"mode", "jobs", "goodput", "fail", "faults", "retries", "mean(s)", "exhaust", "degrade", "trips")
	for _, m := range []FaultsArm{c.Off, c.On} {
		f("%-14s %6d %8d %6d %8d %8d %12.1f %7d %8d %6d\n",
			m.Mode, m.Jobs, m.Goodput, m.Failed, m.FaultsInjected, m.TaskRetries,
			m.MeanCompletionS, m.RetriesExhausted, m.Degradations, m.BreakerTrips)
	}
	f("Recovery goodput gain: %.3fx\n", c.GoodputGainX)
	return string(b)
}
