// overload.go is the overload harness behind BenchmarkOverload: it replays
// the same seeded job burst — arriving several times faster than the fleet
// can serve — against one runtime shard twice: once with plain FIFO
// admission (every job queues, nothing sheds, nothing degrades) and once
// with SLO tiers on (per-tenant queue bounds shed the excess, degradable
// tiers admit onto cheaper plans while the overload controller is engaged).
// Goodput counts jobs that completed within their tier's latency target,
// measured identically in both arms, so the tiered arm's gain is exactly
// the value of shedding early and degrading gracefully instead of letting
// every job rot in an unbounded queue. Both arms run entirely inside the
// simulation: for fixed seeds the comparison is deterministic and
// machine-independent, and the gain can be gated in CI.
package serving

import (
	"fmt"
	"sort"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
	"repro/internal/workload"
)

// OverloadOptions shapes the overload replay.
type OverloadOptions struct {
	// BaseRate approximates the fleet's sustainable service rate in jobs
	// per simulated second; OverloadX multiplies it into the offered load
	// (the interesting range is 2–10×, default 4×).
	BaseRate  float64
	OverloadX float64
	// HorizonS is the arrival window; Seed fixes the Poisson trace.
	HorizonS float64
	Seed     int64
	// Mix shapes the burst (default: a MAX_QUALITY video mix over three
	// tenants, one per tier — quality-constrained plans pick the large
	// models, so admission-time degradation has real headroom).
	Mix workload.MixSpec
	// VMs is the fixed on-demand fleet; MaxConcurrent bounds jobs admitted
	// concurrently into the runtime.
	VMs           int
	MaxConcurrent int
	// SLO configures the tiered arm (classes, tenant mapping, watermarks,
	// bounds). The class latency targets double as the goodput criterion
	// for BOTH arms, so the comparison is like-for-like.
	SLO core.SLOConfig
	// MeasureHorizonS is the goodput window: a job counts only if it
	// completes within its tier's latency target and by this simulated
	// time. Both arms still run to full drain for the zero-stranded check.
	MeasureHorizonS float64
}

// DefaultOverloadOptions is the benchmark configuration: a 4× overloaded
// MAX_QUALITY burst over three tenants (one per tier) on the paper's two-VM
// testbed, with queue bounds tight enough that the unbounded FIFO arm's
// queueing delay visibly blows through the tier latency targets.
func DefaultOverloadOptions() OverloadOptions {
	return OverloadOptions{
		BaseRate:        0.11,
		OverloadX:       4,
		HorizonS:        120,
		Seed:            17,
		VMs:             2,
		MaxConcurrent:   4,
		SLO:             DefaultOverloadSLO(),
		MeasureHorizonS: 900,
	}
}

// DefaultOverloadSLO is the tiered arm's configuration: gold is protected
// (never degraded, tightest latency target), silver and bronze trade quality
// headroom — their floors sit below the workload's own 0.95, giving the
// degradation cascade room — for admission under pressure, with targets and
// queue bounds sized against the fleet's measured fair-share drain rate.
func DefaultOverloadSLO() core.SLOConfig {
	return core.SLOConfig{
		Classes: map[string]core.SLOClass{
			"gold":   {Name: "gold", Rank: 0, LatencyTargetS: 120, MaxQueue: 2},
			"silver": {Name: "silver", Rank: 1, LatencyTargetS: 180, MaxQueue: 2, MinQuality: 0.8, Degradable: true, MaxDegradeLatencyX: 4},
			"bronze": {Name: "bronze", Rank: 2, LatencyTargetS: 240, MaxQueue: 3, MinQuality: 0.7, Degradable: true, MaxDegradeLatencyX: 8},
		},
		DefaultClass:  "silver",
		TenantTiers:   overloadTenantTiers(),
		HighWatermark: 1.5,
		LowWatermark:  0.75,
	}
}

// overloadMix is the burst shape: MAX_QUALITY video jobs over three
// tenants, one per tier.
func overloadMix() workload.MixSpec {
	return workload.MixSpec{
		VideoWeight: 1,
		Tenants:     []string{"g1", "s1", "b1"},
		Constraint:  workflow.MaxQuality,
		VideoScenes: 4,
	}
}

// overloadTenantTiers maps the mix's tenants onto the three tiers.
func overloadTenantTiers() map[string]string {
	return map[string]string{"g1": "gold", "s1": "silver", "b1": "bronze"}
}

// OverloadArm is the measurement for one arm of the comparison.
type OverloadArm struct {
	Mode      string
	Jobs      int
	Admitted  int
	Completed int
	Failed    int
	// Shed counts submissions rejected synchronously on the tenant queue
	// bound; BudgetRejected on the tenant cost budget. Both are zero in
	// the FIFO arm.
	Shed           int
	BudgetRejected int
	// Goodput counts jobs completed within their tier's latency target and
	// by MeasureHorizonS; TierGoodput splits it by tier.
	Goodput     int
	TierGoodput map[string]int
	// DegradedAdmits counts admissions launched on a degraded cheaper
	// plan; Reconfigs counts mid-flight re-plan adoptions (overload entry
	// kicks the reconfiguration controller).
	DegradedAdmits int
	Reconfigs      int
	OverloadEnters int
	// PeakQueueDepth is the deepest admission queue the arm ever saw —
	// the bounded-queue contract's observable.
	PeakQueueDepth int
	// Stranded counts jobs in no terminal state after the drain — always
	// zero, or the run errors.
	Stranded int
	// EstCostUSD sums the launched plans' estimated costs (the per-job
	// metering figure); MeanCompletionS averages submit→done over
	// successful jobs; MakespanS is the last successful completion.
	EstCostUSD      float64
	MeanCompletionS float64
	MakespanS       float64
}

// OverloadComparison pits SLO-tiered admission against unbounded FIFO on
// the same replayed burst.
type OverloadComparison struct {
	FIFO   OverloadArm
	Tiered OverloadArm
	// GoodputGainX = Tiered.Goodput / FIFO.Goodput.
	GoodputGainX float64
	// QueueBoundTotal is the sum of the per-tenant queue bounds over the
	// tenants that actually appear in the trace — the ceiling the tiered
	// arm's PeakQueueDepth must respect.
	QueueBoundTotal int
}

// RunOverload replays the burst through both arms. Shed submissions are the
// tiered arm's whole point and do not error; a stranded job — or a tiered
// queue deeper than the sum of the per-tenant bounds — does.
func RunOverload(opts OverloadOptions) (*OverloadComparison, error) {
	if opts.OverloadX == 0 {
		opts.OverloadX = 4
	}
	if opts.OverloadX < 2 || opts.OverloadX > 10 {
		return nil, fmt.Errorf("serving: overload multiplier %.1f outside [2, 10]", opts.OverloadX)
	}
	mix := opts.Mix
	if len(mix.Tenants) == 0 {
		mix = overloadMix()
	}
	if opts.SLO.Classes == nil {
		opts.SLO = DefaultOverloadSLO()
	}
	arrivals, err := workload.PoissonTrace(mix, opts.BaseRate*opts.OverloadX, opts.HorizonS, opts.Seed)
	if err != nil {
		return nil, err
	}
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("serving: empty overload job trace")
	}
	fifo, err := runOverloadArm(opts, arrivals, false)
	if err != nil {
		return nil, err
	}
	tiered, err := runOverloadArm(opts, arrivals, true)
	if err != nil {
		return nil, err
	}
	cmp := &OverloadComparison{FIFO: fifo, Tiered: tiered}
	if fifo.Goodput > 0 {
		cmp.GoodputGainX = float64(tiered.Goodput) / float64(fifo.Goodput)
	}
	seen := map[string]bool{}
	for _, arr := range arrivals {
		if !seen[arr.Tenant] {
			seen[arr.Tenant] = true
			cmp.QueueBoundTotal += classOf(opts.SLO, arr.Tenant).MaxQueue
		}
	}
	if cmp.QueueBoundTotal > 0 && tiered.PeakQueueDepth > cmp.QueueBoundTotal {
		return nil, fmt.Errorf("serving: tiered queue depth %d exceeded the %d-slot bound",
			tiered.PeakQueueDepth, cmp.QueueBoundTotal)
	}
	return cmp, nil
}

// classOf resolves a tenant's SLO class from the harness configuration —
// the same resolution the scheduler applies, reproduced here so the FIFO
// arm can classify completions against identical targets.
func classOf(cfg core.SLOConfig, tenant string) core.SLOClass {
	classes := cfg.Classes
	if classes == nil {
		classes = core.DefaultSLOClasses()
	}
	name := cfg.TenantTiers[tenant]
	if name == "" {
		name = cfg.DefaultClass
	}
	if name == "" {
		name = "silver"
	}
	return classes[name]
}

// runOverloadArm replays the burst against one freshly-provisioned shard
// stack, entirely in simulated time.
func runOverloadArm(opts OverloadOptions, arrivals []workload.Arrival, tiered bool) (OverloadArm, error) {
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	vms := opts.VMs
	if vms <= 0 {
		vms = 2
	}
	for v := 0; v < vms; v++ {
		cl.AddVM(fmt.Sprintf("vm%d", v), hardware.NDv4SKUName, false)
	}
	rt, err := core.New(core.Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		return OverloadArm{}, err
	}
	maxc := opts.MaxConcurrent
	if maxc <= 0 {
		maxc = 4
	}
	sched := core.NewScheduler(se, rt, maxc)
	// Both arms run the reconfiguration controller: in the FIFO arm it
	// never fires (no capacity events), in the tiered arm overload entry
	// kicks it so running lower-tier work re-plans cheaper mid-flight.
	sched.EnableReconfig(core.ReconfigConfig{})
	if tiered {
		sched.EnableSLO(opts.SLO)
	}

	arm := OverloadArm{Mode: "fifo", Jobs: len(arrivals), TierGoodput: map[string]int{}}
	if tiered {
		arm.Mode = "slo-tiered"
	}
	var handles []*core.Handle
	var completions []float64
	for _, arr := range arrivals {
		arr := arr
		tier := classOf(opts.SLO, arr.Tenant)
		se.After(sim.Duration(arr.AtS), func() {
			h, err := sched.Submit(arr.Tenant, arr.Job, core.SubmitOptions{RelaxFloor: true, KeepEngines: true})
			if err != nil {
				// Synchronous admission rejections are the tiered arm's
				// design; anything untyped is a real failure.
				switch core.ErrorCodeOf(err) {
				case core.CodeShedOverload:
					arm.Shed++
				case core.CodeBudgetExhausted:
					arm.BudgetRejected++
				default:
					arm.Failed++
				}
				return
			}
			arm.Admitted++
			handles = append(handles, h)
			if depth := sched.Stats().Queued; depth > arm.PeakQueueDepth {
				arm.PeakQueueDepth = depth
			}
			h.OnDone(func(h *core.Handle) {
				if h.Status() != core.JobDone {
					arm.Failed++
					return
				}
				arm.Completed++
				arm.EstCostUSD += h.Execution().Plan().EstCostUSD
				done := se.Now().Seconds()
				completions = append(completions, done-arr.AtS)
				if done > arm.MakespanS {
					arm.MakespanS = done
				}
				if done <= opts.MeasureHorizonS &&
					(tier.LatencyTargetS <= 0 || done-arr.AtS <= tier.LatencyTargetS) {
					arm.Goodput++
					arm.TierGoodput[tier.Name]++
				}
			})
		})
	}
	se.Run()

	// Zero-stranded contract: after a full drain every admitted job must be
	// terminal, and every shed submission was already terminal at Submit.
	for _, h := range handles {
		switch h.Status() {
		case core.JobDone, core.JobFailed, core.JobCanceled:
		default:
			arm.Stranded++
		}
	}
	if arm.Stranded > 0 {
		return arm, fmt.Errorf("serving: overload arm %s stranded %d of %d jobs",
			arm.Mode, arm.Stranded, len(arrivals))
	}
	if len(completions) > 0 {
		sum := 0.0
		for _, c := range completions {
			sum += c
		}
		arm.MeanCompletionS = sum / float64(len(completions))
		sort.Float64s(completions)
	}
	st := sched.Stats()
	arm.DegradedAdmits = st.SLODegradedAdmits
	arm.Reconfigs = st.Reconfigs
	arm.OverloadEnters = st.OverloadEnters
	return arm, nil
}

// String renders the comparison.
func (c *OverloadComparison) String() string {
	var b []byte
	f := func(format string, args ...any) { b = append(b, fmt.Sprintf(format, args...)...) }
	f("Overload admission: SLO tiers vs unbounded FIFO (simulated time, replayed burst)\n")
	f("%-12s %5s %6s %8s %5s %8s %9s %7s %9s %10s\n",
		"mode", "jobs", "admit", "goodput", "shed", "degrade", "peak-q", "mean(s)", "cost($)", "makespan")
	for _, m := range []OverloadArm{c.FIFO, c.Tiered} {
		f("%-12s %5d %6d %8d %5d %8d %9d %7.1f %9.4f %9.1fs\n",
			m.Mode, m.Jobs, m.Admitted, m.Goodput, m.Shed, m.DegradedAdmits,
			m.PeakQueueDepth, m.MeanCompletionS, m.EstCostUSD, m.MakespanS)
	}
	tiers := make([]string, 0, len(c.Tiered.TierGoodput))
	for name := range c.Tiered.TierGoodput {
		tiers = append(tiers, name)
	}
	sort.Strings(tiers)
	for _, name := range tiers {
		f("  %-8s goodput %3d (fifo %3d)\n", name, c.Tiered.TierGoodput[name], c.FIFO.TierGoodput[name])
	}
	f("Tiered goodput gain: %.3fx (queue bound %d)\n", c.GoodputGainX, c.QueueBoundTotal)
	return string(b)
}
