package serving

import (
	"reflect"
	"testing"
)

// testClusterOptions shrinks the default shape so the full measurement stays
// fast under -race.
func testClusterOptions() ClusterOptions {
	opts := DefaultClusterOptions()
	opts.Tenants = 24
	opts.JobsPerTenant = 1
	return opts
}

func TestRunClusterScalesAndSurvivesChurn(t *testing.T) {
	res, err := RunCluster(testClusterOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.OneNode.Completed != res.Jobs || res.ThreeNode.Completed != res.Jobs {
		t.Fatalf("incomplete arms: %+v", res)
	}
	if len(res.ThreeNode.NodeSimS) != 3 || len(res.OneNode.NodeSimS) != 1 {
		t.Fatalf("node rows: %+v", res)
	}
	// Even the shrunk trace must show real scaling: the ring spreads the
	// tenants, so the 3-node critical path is well under the 1-node one.
	if res.ScalingX < 1.3 {
		t.Fatalf("scaling %v < 1.3: %+v", res.ScalingX, res)
	}
	if res.Churn.Stranded != 0 {
		t.Fatalf("%d stranded jobs: %+v", res.Churn.Stranded, res.Churn)
	}
	if res.Churn.JoinBuilds != 0 {
		t.Fatalf("joined node rebuilt %d profiles instead of replicating", res.Churn.JoinBuilds)
	}
	if !res.Churn.TotalsMonotonic {
		t.Fatalf("cluster totals regressed during churn: %+v", res.Churn)
	}
	if res.Churn.TenantsMoved == 0 {
		t.Fatal("join+leave moved no tenants")
	}
}

// TestRunClusterMeasuredArmsDeterministic pins the harness's reproducibility:
// sequential waited submissions make each node's sim schedule a pure function
// of the trace, so the measured arms must be bit-identical across runs. (The
// churn arm is asynchronous by design and is excluded.)
func TestRunClusterMeasuredArmsDeterministic(t *testing.T) {
	opts := testClusterOptions()
	a, err := RunCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.OneNode, b.OneNode) || !reflect.DeepEqual(a.ThreeNode, b.ThreeNode) {
		t.Fatalf("measured arms diverged across identical runs:\n%+v\n%+v\nvs\n%+v\n%+v",
			a.OneNode, a.ThreeNode, b.OneNode, b.ThreeNode)
	}
	if a.ScalingX != b.ScalingX {
		t.Fatalf("scaling diverged: %v vs %v", a.ScalingX, b.ScalingX)
	}
}

func TestClusterTraceShape(t *testing.T) {
	opts := testClusterOptions()
	trace, err := clusterTrace(opts, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != opts.Tenants*opts.JobsPerTenant {
		t.Fatalf("trace length %d, want %d", len(trace), opts.Tenants*opts.JobsPerTenant)
	}
}
