package serving

import (
	"reflect"
	"testing"
)

// TestRunFaultsRecoveryGain is the chaos harness's contract: under the
// default fault trace the recovery-on arm completes at least 1.3x the jobs
// of the recovery-off arm inside the same simulated horizon, recovery
// actually retries (the gain is not a fluke of the trace missing), and
// neither arm strands a job (RunFaults errors on any non-terminal handle
// after the drain).
func TestRunFaultsRecoveryGain(t *testing.T) {
	cmp, err := RunFaults(DefaultFaultsOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.GoodputGainX < 1.3 {
		t.Fatalf("recovery goodput gain %.3fx below 1.3x\n%s", cmp.GoodputGainX, cmp)
	}
	if cmp.On.Goodput <= cmp.Off.Goodput {
		t.Fatalf("recovery-on goodput %d not above recovery-off %d", cmp.On.Goodput, cmp.Off.Goodput)
	}
	if cmp.On.TaskRetries == 0 {
		t.Fatal("recovery-on arm never retried: the fault trace is not exercising recovery")
	}
	if cmp.Off.TaskRetries != 0 {
		t.Fatalf("recovery-off arm reported %d retries; recovery must be inert when disabled", cmp.Off.TaskRetries)
	}
	if cmp.Off.FaultsInjected == 0 || cmp.On.FaultsInjected == 0 {
		t.Fatalf("faults not injected (off=%d on=%d)", cmp.Off.FaultsInjected, cmp.On.FaultsInjected)
	}
	if cmp.Off.Stranded != 0 || cmp.On.Stranded != 0 {
		t.Fatalf("stranded jobs (off=%d on=%d)", cmp.Off.Stranded, cmp.On.Stranded)
	}
}

// TestRunFaultsDeterministic replays the identical configuration twice and
// demands bit-identical measurements: the whole harness — trace generation,
// injection, backoff jitter, breaker transitions — runs on seeded streams in
// simulated time, so any drift is a determinism regression.
func TestRunFaultsDeterministic(t *testing.T) {
	a, err := RunFaults(DefaultFaultsOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaults(DefaultFaultsOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault replay not deterministic:\n%s\nvs\n%s", a, b)
	}
}
