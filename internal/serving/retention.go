package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
)

// RetentionOptions shapes the long-history replay that exercises tiered
// telemetry retention: the same mixed-tenant trace as the serving
// comparison, but replayed against a pool with a deliberately small
// retention window so the served simulated history spans many windows.
type RetentionOptions struct {
	Options
	// RetainSimSeconds / MaxSeriesPoints configure the pool under test (see
	// api.PoolConfig); RetainSimSeconds should be far below the simulated
	// history the trace accumulates.
	RetainSimSeconds float64
	MaxSeriesPoints  int
	// CompareUnbounded additionally replays the trace with retention
	// disabled, reporting the unbounded peak footprint the compacting pool
	// is measured against.
	CompareUnbounded bool
	// SamplePeriod is the wall-clock stats sampling cadence (default 25ms).
	SamplePeriod time.Duration
}

// DefaultRetentionOptions replays the default serving trace with a 60
// simulated-second retention window — a small fraction of the simulated
// history the trace serves, so a bounded footprint is a real claim.
func DefaultRetentionOptions() RetentionOptions {
	o := DefaultOptions()
	o.Trials = 1
	return RetentionOptions{
		Options:          o,
		RetainSimSeconds: 60,
		MaxSeriesPoints:  -1, // compaction only; recycling has its own test
		CompareUnbounded: true,
	}
}

// RetentionResult reports the bounded-memory claim: peak and final retained
// telemetry under retention, served-history-to-retention ratio, and (when
// compared) the unbounded baseline's peak.
type RetentionResult struct {
	Jobs      int
	Completed int
	Failed    int
	WallS     float64
	// Throughput is completed jobs per wall-clock second with retention on
	// (comparable to the shared arm of Result).
	Throughput float64

	// PeakPoints/PeakBytes are the largest pool-wide retained-telemetry
	// readings sampled during the replay; FinalPoints/FinalBytes the
	// quiescent readings after it.
	PeakPoints  int
	PeakBytes   int
	FinalPoints int
	FinalBytes  int
	// CompactedPoints totals change points dropped by compaction; Recycles
	// counts shard replacements.
	CompactedPoints int
	Recycles        int
	// MaxShardSimS is the longest shard history served; HistoryOverRetainX
	// is that history divided by the retention window (the "≥ 10×" claim).
	MaxShardSimS       float64
	HistoryOverRetainX float64

	// UnboundedPeakPoints/UnboundedPeakBytes are the no-retention replay's
	// peak footprint (0 when CompareUnbounded is off); GrowthContainedX is
	// unbounded peak points / retained peak points.
	UnboundedPeakPoints int
	UnboundedPeakBytes  int
	GrowthContainedX    float64
}

// RunRetention replays the trace against the shared pool with tiered
// retention enabled, sampling /v1/stats for the telemetry footprint, and
// optionally against an unbounded pool for contrast.
func RunRetention(opts RetentionOptions) (*RetentionResult, error) {
	trace, err := buildTrace(opts.Options)
	if err != nil {
		return nil, err
	}
	if opts.SamplePeriod <= 0 {
		opts.SamplePeriod = 25 * time.Millisecond
	}
	retained, err := runRetentionMode(opts, trace, opts.RetainSimSeconds, opts.MaxSeriesPoints)
	if err != nil {
		return nil, err
	}
	res := retained
	if opts.CompareUnbounded {
		unbounded, err := runRetentionMode(opts, trace, -1, -1)
		if err != nil {
			return nil, err
		}
		res.UnboundedPeakPoints = unbounded.PeakPoints
		res.UnboundedPeakBytes = unbounded.PeakBytes
		if res.PeakPoints > 0 {
			res.GrowthContainedX = float64(unbounded.PeakPoints) / float64(res.PeakPoints)
		}
	}
	return res, nil
}

// runRetentionMode is one replay: trace through the HTTP surface with a
// concurrent stats sampler watching the telemetry footprint.
func runRetentionMode(opts RetentionOptions, trace [][]byte, retainS float64, maxPoints int) (*RetentionResult, error) {
	runtime.GC()
	server, err := api.NewServer(api.PoolConfig{
		Shards:                opts.Shards,
		VMsPerShard:           opts.VMsPerShard,
		MaxConcurrentPerShard: opts.MaxConcurrentPerShard,
		RetainSimSeconds:      retainS,
		MaxSeriesPoints:       maxPoints,
	})
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(server)
	defer func() {
		srv.Close()
		server.Close()
	}()
	clients := opts.Clients
	if clients <= 0 {
		clients = 8
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients + 1,
		MaxIdleConnsPerHost: clients + 1,
	}}
	defer client.CloseIdleConnections()

	fetch := func() (api.PoolStats, error) {
		resp, err := client.Get(srv.URL + "/v1/stats")
		if err != nil {
			return api.PoolStats{}, err
		}
		defer resp.Body.Close()
		var st api.PoolStats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return api.PoolStats{}, err
		}
		return st, nil
	}

	res := &RetentionResult{Jobs: len(trace)}
	var peakMu sync.Mutex
	observe := func(st api.PoolStats) {
		peakMu.Lock()
		if st.TelemetryPoints > res.PeakPoints {
			res.PeakPoints = st.TelemetryPoints
		}
		if st.TelemetryBytes > res.PeakBytes {
			res.PeakBytes = st.TelemetryBytes
		}
		peakMu.Unlock()
	}

	stop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(opts.SamplePeriod)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if st, err := fetch(); err == nil {
					observe(st)
				}
			}
		}
	}()

	work := make(chan []byte)
	var mu sync.Mutex
	var completed, failed int
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for body := range work {
				resp, err := client.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				ok := false
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					ok = resp.StatusCode == http.StatusOK
				}
				mu.Lock()
				if ok {
					completed++
				} else {
					failed++
				}
				mu.Unlock()
			}
		}()
	}
	for _, body := range trace {
		work <- body
	}
	close(work)
	wg.Wait()
	close(stop)
	samplerWG.Wait()
	res.WallS = time.Since(start).Seconds()
	res.Completed, res.Failed = completed, failed
	if res.WallS > 0 {
		res.Throughput = float64(completed) / res.WallS
	}

	final, err := fetch()
	if err != nil {
		return nil, err
	}
	observe(final)
	res.FinalPoints = final.TelemetryPoints
	res.FinalBytes = final.TelemetryBytes
	res.Recycles = final.Recycles
	for _, sh := range final.Shards {
		res.CompactedPoints += sh.CompactedPoints
		if sh.SimTimeS > res.MaxShardSimS {
			res.MaxShardSimS = sh.SimTimeS
		}
	}
	if retainS > 0 {
		res.HistoryOverRetainX = res.MaxShardSimS / retainS
	}
	return res, nil
}

// String renders the bounded-memory comparison.
func (r *RetentionResult) String() string {
	var b strings.Builder
	b.WriteString("Tiered telemetry retention on the mixed-tenant trace (shared pool, HTTP surface)\n")
	fmt.Fprintf(&b, "jobs %d done %d fail %d in %.2fs (%.1f jobs/s)\n",
		r.Jobs, r.Completed, r.Failed, r.WallS, r.Throughput)
	fmt.Fprintf(&b, "served history %.0f sim-s = %.1f× retention window\n",
		r.MaxShardSimS, r.HistoryOverRetainX)
	fmt.Fprintf(&b, "retained telemetry: peak %d pts (%d B), final %d pts; compacted %d pts, %d recycles\n",
		r.PeakPoints, r.PeakBytes, r.FinalPoints, r.CompactedPoints, r.Recycles)
	if r.UnboundedPeakPoints > 0 {
		fmt.Fprintf(&b, "unbounded baseline peak: %d pts (%d B) — %.1f× the retained peak\n",
			r.UnboundedPeakPoints, r.UnboundedPeakBytes, r.GrowthContainedX)
	}
	return b.String()
}
