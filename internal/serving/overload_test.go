package serving

import (
	"reflect"
	"testing"
)

// TestOverloadTieredBeatsFIFO is the overload harness's contract at the
// default 4× burst: tiered admission sheds and degrades its way to materially
// more within-target goodput than unbounded FIFO, while the admission queue
// stays under the summed per-tenant bounds and nothing strands. These are the
// same properties BenchmarkOverload gates in CI.
func TestOverloadTieredBeatsFIFO(t *testing.T) {
	cmp, err := RunOverload(DefaultOverloadOptions())
	if err != nil {
		t.Fatalf("RunOverload: %v", err)
	}
	t.Logf("\n%s", cmp)
	if cmp.GoodputGainX < 1.2 {
		t.Errorf("tiered goodput gain %.3fx, want >= 1.2x", cmp.GoodputGainX)
	}
	if cmp.Tiered.Shed == 0 {
		t.Error("tiered arm shed nothing at 4x overload; queue bounds are not binding")
	}
	if cmp.Tiered.DegradedAdmits == 0 {
		t.Error("tiered arm degraded nothing; admission-time degradation never engaged")
	}
	if cmp.Tiered.OverloadEnters == 0 {
		t.Error("overload controller never engaged at 4x offered load")
	}
	if cmp.FIFO.Shed != 0 || cmp.FIFO.DegradedAdmits != 0 {
		t.Errorf("FIFO arm shed %d / degraded %d; the baseline must be plain admission",
			cmp.FIFO.Shed, cmp.FIFO.DegradedAdmits)
	}
	if cmp.QueueBoundTotal <= 0 {
		t.Fatal("no per-tenant queue bounds resolved for the trace")
	}
	if cmp.Tiered.PeakQueueDepth > cmp.QueueBoundTotal {
		t.Errorf("tiered peak queue depth %d exceeds summed bound %d",
			cmp.Tiered.PeakQueueDepth, cmp.QueueBoundTotal)
	}
	if cmp.Tiered.PeakQueueDepth >= cmp.FIFO.PeakQueueDepth {
		t.Errorf("tiered peak queue %d not below FIFO's %d; bounds changed nothing",
			cmp.Tiered.PeakQueueDepth, cmp.FIFO.PeakQueueDepth)
	}
	if cmp.FIFO.Stranded != 0 || cmp.Tiered.Stranded != 0 {
		t.Errorf("stranded jobs: fifo %d tiered %d, want zero",
			cmp.FIFO.Stranded, cmp.Tiered.Stranded)
	}
	for _, arm := range []OverloadArm{cmp.FIFO, cmp.Tiered} {
		if got := arm.Admitted + arm.Shed + arm.BudgetRejected; got != arm.Jobs {
			t.Errorf("%s: admitted %d + shed %d + budget-rejected %d != %d jobs (a submission fell through)",
				arm.Mode, arm.Admitted, arm.Shed, arm.BudgetRejected, arm.Jobs)
		}
		if got := arm.Completed + arm.Failed; got != arm.Admitted {
			t.Errorf("%s: completed %d + failed %d != admitted %d",
				arm.Mode, arm.Completed, arm.Failed, arm.Admitted)
		}
	}
}

// TestOverloadDeterministic replays the identical seeded burst twice and
// requires the full comparison structures to match — including which jobs
// shed, which admits degraded, and every goodput split. This is the
// deterministic-shed half of the hysteresis property: for a fixed seed the
// overload controller's decisions are a pure function of the trace.
func TestOverloadDeterministic(t *testing.T) {
	opts := DefaultOverloadOptions()
	a, err := RunOverload(opts)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunOverload(opts)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("overload comparison not deterministic for a fixed seed:\nfirst:\n%s\nsecond:\n%s", a, b)
	}
}

// TestOverloadMultiplierBounds pins the documented 2–10× envelope.
func TestOverloadMultiplierBounds(t *testing.T) {
	for _, x := range []float64{1, 1.5, 11, 100} {
		opts := DefaultOverloadOptions()
		opts.OverloadX = x
		if _, err := RunOverload(opts); err == nil {
			t.Errorf("OverloadX=%.1f: want error outside [2, 10], got nil", x)
		}
	}
}
