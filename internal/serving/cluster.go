// Multi-node cluster harness: drives the consistent-hash router tier over
// in-process murakkabd nodes with a deterministic tenant trace, measures how
// routed throughput scales with node count, and exercises membership churn
// (warm join, drained leave) end to end. Throughput is measured in simulated
// time — completed jobs over the slowest node's sim-time makespan — so the
// scaling factor reflects how the ring divides work across nodes, not how
// many host cores the benchmark machine happens to have.
package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/router"
	"repro/internal/workflow"
	"repro/internal/workload"
)

// ClusterOptions shapes the scale-out measurement.
type ClusterOptions struct {
	// Tenants is the tenant population; each tenant submits JobsPerTenant
	// jobs of identical total shape, so node load is proportional to the
	// ring's tenant spread.
	Tenants       int
	JobsPerTenant int
	// VNodes and RingSeed parameterize the ring (router defaults apply when
	// zero).
	VNodes   int
	RingSeed int64
	// Node sizes each in-process node's pool.
	Node api.PoolConfig
}

// DefaultClusterOptions is the benchmark configuration: 48 tenants × 2 jobs
// over single-shard nodes, small enough to rerun in CI.
func DefaultClusterOptions() ClusterOptions {
	return ClusterOptions{
		Tenants:       48,
		JobsPerTenant: 2,
		RingSeed:      42,
		Node: api.PoolConfig{
			Shards:                1,
			VMsPerShard:           2,
			MaxConcurrentPerShard: 4,
		},
	}
}

// ClusterArm is one measured configuration (a node count).
type ClusterArm struct {
	Nodes     int
	Completed int
	// NodeSimS is each node's sim-time makespan after the trace completes;
	// MaxNodeSimS (the slowest node) is the cluster's critical path.
	NodeSimS    []float64
	MaxNodeSimS float64
	// Throughput is Completed / MaxNodeSimS, in jobs per simulated second.
	Throughput float64
}

// ChurnResult is the membership-churn arm: async load across a warm join and
// a drained leave.
type ChurnResult struct {
	Jobs     int
	Stranded int
	// JoinBuilds counts profile builds the joining node ran — zero when
	// generation-delta replication warmed it.
	JoinBuilds   int
	ReroutedJobs int64
	NodeDownJobs int64
	TenantsMoved int64
	// TotalsMonotonic reports whether cluster totals never regressed across
	// the join, the leave and the drain.
	TotalsMonotonic bool
}

// ClusterResult is the full scale-out measurement.
type ClusterResult struct {
	Jobs      int
	OneNode   ClusterArm
	ThreeNode ClusterArm
	// ScalingX = ThreeNode.Throughput / OneNode.Throughput.
	ScalingX float64
	Churn    ChurnResult
}

// clusterTrace renders the deterministic tenant trace: every tenant submits
// the same rotation of job kinds, so total work per tenant is identical.
func clusterTrace(opts ClusterOptions, wait bool) ([][]byte, error) {
	tenants := opts.Tenants
	if tenants <= 0 {
		tenants = 48
	}
	perTenant := opts.JobsPerTenant
	if perTenant <= 0 {
		perTenant = 2
	}
	kinds := []workflow.Job{
		workload.VideoJob(1, 2, 30, 12, workflow.MinCost),
		workload.NewsfeedJob("reader", 2, workflow.MinCost),
		workload.DocQAJob(2, 2000, workflow.MinCost),
	}
	var out [][]byte
	for round := 0; round < perTenant; round++ {
		for ti := 0; ti < tenants; ti++ {
			req := requestFrom(fmt.Sprintf("tenant-%02d", ti), kinds[(ti+round)%len(kinds)])
			req.Wait = wait
			body, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			out = append(out, body)
		}
	}
	return out, nil
}

// routerConfig builds the router config for n nodes.
func routerConfig(opts ClusterOptions, nodes int) router.Config {
	return router.Config{
		Nodes:  nodes,
		VNodes: opts.VNodes,
		Seed:   opts.RingSeed,
		Node:   opts.Node,
	}
}

// submit posts one request body through the router and returns the recorder.
func submit(rt *router.Router, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	return rec
}

// runArm replays the waited trace against an n-node cluster. Submissions are
// sequential and waited, so each node's sim schedule — and therefore the
// arm's throughput — is a pure function of the trace.
func runArm(opts ClusterOptions, nodes int, trace [][]byte) (ClusterArm, error) {
	rt, err := router.New(routerConfig(opts, nodes))
	if err != nil {
		return ClusterArm{}, err
	}
	defer rt.Close()
	arm := ClusterArm{Nodes: nodes}
	for i, body := range trace {
		rec := submit(rt, body)
		if rec.Code != http.StatusOK {
			return ClusterArm{}, fmt.Errorf("serving: cluster arm %d nodes, job %d: status %d: %s",
				nodes, i, rec.Code, rec.Body.String())
		}
		arm.Completed++
	}
	for _, n := range rt.Stats().Nodes {
		arm.NodeSimS = append(arm.NodeSimS, n.SimTimeS)
		if n.SimTimeS > arm.MaxNodeSimS {
			arm.MaxNodeSimS = n.SimTimeS
		}
	}
	if arm.MaxNodeSimS > 0 {
		arm.Throughput = float64(arm.Completed) / arm.MaxNodeSimS
	}
	return arm, nil
}

// monotonicCheck tracks successive ClusterTotals reads.
type monotonicCheck struct {
	prev router.ClusterTotals
	ok   bool
}

func newMonotonicCheck() *monotonicCheck { return &monotonicCheck{ok: true} }

func (m *monotonicCheck) observe(t router.ClusterTotals) {
	if t.Submitted < m.prev.Submitted || t.Completed < m.prev.Completed ||
		t.Failed < m.prev.Failed || t.Canceled < m.prev.Canceled ||
		t.PlanSearches < m.prev.PlanSearches || t.Recycles < m.prev.Recycles ||
		t.EventsProcessed < m.prev.EventsProcessed {
		m.ok = false
	}
	m.prev = t
}

// runChurn drives the membership-churn arm: async load, heartbeat, a warm
// join, a drained leave with an immediately-expiring deadline, then a poll
// proving every accepted job reached a terminal state through the router.
func runChurn(opts ClusterOptions, trace [][]byte) (ChurnResult, error) {
	cfg := routerConfig(opts, 2)
	cfg.DrainDeadline = -1
	rt, err := router.New(cfg)
	if err != nil {
		return ChurnResult{}, err
	}
	defer rt.Close()

	res := ChurnResult{Jobs: len(trace), JoinBuilds: -1, TotalsMonotonic: true}
	mono := newMonotonicCheck()
	var ids []string
	sendSlice := func(bodies [][]byte) error {
		for i, body := range bodies {
			rec := submit(rt, body)
			if rec.Code != http.StatusAccepted && rec.Code != http.StatusOK {
				return fmt.Errorf("serving: churn submit %d: status %d: %s", i, rec.Code, rec.Body.String())
			}
			var jr struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &jr); err == nil && jr.ID != "" {
				ids = append(ids, jr.ID)
			}
		}
		return nil
	}

	third := len(trace) / 3
	if err := sendSlice(trace[:third]); err != nil {
		return res, err
	}
	rt.HeartbeatOnce()
	mono.observe(rt.Stats().Totals)

	if err := rt.Join("n2"); err != nil {
		return res, err
	}
	if builds, ok := rt.NodeBuilds("n2"); ok {
		res.JoinBuilds = builds
	}
	if err := sendSlice(trace[third : 2*third]); err != nil {
		return res, err
	}
	mono.observe(rt.Stats().Totals)

	if err := rt.Leave("n0"); err != nil {
		return res, err
	}
	mono.observe(rt.Stats().Totals)
	if err := sendSlice(trace[2*third:]); err != nil {
		return res, err
	}

	// Drain: every accepted job must reach a terminal state via the router.
	deadline := time.Now().Add(120 * time.Second)
	for _, id := range ids {
		for {
			req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil)
			rec := httptest.NewRecorder()
			rt.ServeHTTP(rec, req)
			var jr struct {
				Status string `json:"status"`
			}
			done := rec.Code == http.StatusOK &&
				json.Unmarshal(rec.Body.Bytes(), &jr) == nil &&
				(jr.Status == "done" || jr.Status == "failed" || jr.Status == "canceled")
			if done {
				break
			}
			if time.Now().After(deadline) {
				res.Stranded++
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	mono.observe(rt.Stats().Totals)

	s := rt.Stats()
	res.ReroutedJobs = s.ReroutedJobs
	res.NodeDownJobs = s.NodeDownJobs
	res.TenantsMoved = s.TenantsMoved
	res.TotalsMonotonic = mono.ok
	return res, nil
}

// RunCluster measures routed throughput scaling (1 node vs 3 nodes on the
// identical waited trace) and runs the churn arm.
func RunCluster(opts ClusterOptions) (*ClusterResult, error) {
	waited, err := clusterTrace(opts, true)
	if err != nil {
		return nil, err
	}
	one, err := runArm(opts, 1, waited)
	if err != nil {
		return nil, err
	}
	three, err := runArm(opts, 3, waited)
	if err != nil {
		return nil, err
	}
	res := &ClusterResult{Jobs: len(waited), OneNode: one, ThreeNode: three}
	if one.Throughput > 0 {
		res.ScalingX = three.Throughput / one.Throughput
	}
	async, err := clusterTrace(opts, false)
	if err != nil {
		return nil, err
	}
	res.Churn, err = runChurn(opts, async)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the measurement.
func (r *ClusterResult) String() string {
	var b strings.Builder
	b.WriteString("Horizontal scale-out through the consistent-hash router tier (sim-time throughput)\n")
	fmt.Fprintf(&b, "%-8s %6s %14s %16s\n", "nodes", "jobs", "makespan(s)", "jobs/sim-s")
	for _, arm := range []ClusterArm{r.OneNode, r.ThreeNode} {
		fmt.Fprintf(&b, "%-8d %6d %14.1f %16.3f\n", arm.Nodes, arm.Completed, arm.MaxNodeSimS, arm.Throughput)
	}
	fmt.Fprintf(&b, "Routed throughput scaling at 3 nodes: %.2fx\n", r.ScalingX)
	fmt.Fprintf(&b, "Churn: %d jobs, %d stranded, %d rerouted, %d node_down, %d tenants moved, join builds %d, totals monotonic %v\n",
		r.Churn.Jobs, r.Churn.Stranded, r.Churn.ReroutedJobs, r.Churn.NodeDownJobs,
		r.Churn.TenantsMoved, r.Churn.JoinBuilds, r.Churn.TotalsMonotonic)
	return b.String()
}
