// reconfig.go is the fleet-churn harness behind BenchmarkReconfig: it
// replays the same bursty job mix and the same fleet-churn trace (VMs
// arriving mid-run, CGReplay-style capture/replay) against one runtime shard
// twice — once with the mid-flight reconfiguration controller enabled and
// once without — and compares completion time and energy in *simulated*
// seconds. Both arms run entirely inside the simulation (no wall-clock in
// the metrics, no loop goroutine), so for fixed seeds the comparison is
// deterministic and machine-independent: the gain ratio can be gated in CI.
package serving

import (
	"fmt"
	"sort"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
	"repro/internal/workload"
)

// ReconfigOptions shapes the replayed run.
type ReconfigOptions struct {
	// Rate/HorizonS/Seed parameterize the Poisson job burst; Mix its shape
	// (a video-heavy MinLatency mix when zero — worker-pool stages are what
	// re-binding parallelism accelerates).
	Rate     float64
	HorizonS float64
	Seed     int64
	Mix      workload.MixSpec
	// VMs is the initial on-demand fleet; the churn trace grows it.
	VMs int
	// ChurnAddRate/ChurnLifetimeS/ChurnHorizonS/ChurnSeed parameterize the
	// replayed fleet-churn trace (spot VMs arriving, optionally evicted).
	ChurnAddRate   float64
	ChurnLifetimeS float64
	ChurnHorizonS  float64
	ChurnSeed      int64
	// MaxConcurrent bounds jobs admitted concurrently (0 admits the whole
	// burst).
	MaxConcurrent int
	// RebalancePeriodS enables the cluster manager's engine-rebalancing loop
	// in both arms (0 disables): engines scale with the fleet either way, so
	// the comparison isolates what re-binding worker stages adds on top.
	RebalancePeriodS float64
	// Hysteresis overrides the controller's adoption margin (0 = default).
	Hysteresis float64
}

// DefaultReconfigOptions is the benchmark configuration: a ~20-job
// video-only burst planned against a single VM with four jobs admitted at a
// time, and more VMs arriving while the running jobs' later stages are still
// pending. The engine-rebalancing loop runs in both arms, so the measured
// gain isolates stage re-binding.
func DefaultReconfigOptions() ReconfigOptions {
	return ReconfigOptions{
		Rate:             0.4,
		HorizonS:         50,
		Seed:             7,
		VMs:              1,
		ChurnAddRate:     0.02,
		ChurnHorizonS:    160,
		ChurnSeed:        3,
		ChurnLifetimeS:   0, // pure growth: adds are what move plan capacity
		MaxConcurrent:    4,
		RebalancePeriodS: 30,
	}
}

// reconfigMix is the default job mix: video understanding only — its
// frame-extraction/STT/detection stages run on elastic worker pools whose
// parallelism is exactly what a bigger fleet unlocks, and every job shares
// the same two warm serving engines, so the whole burst fits the single
// starting VM. Constrained MinLatency, so the objective the controller
// optimizes is completion time.
func reconfigMix() workload.MixSpec {
	return workload.MixSpec{
		VideoWeight: 1,
		Tenants:     []string{"alice", "bob", "carol", "dave"},
		Constraint:  workflow.MinLatency,
		VideoScenes: 12,
	}
}

// ReconfigArm is the measurement for one arm of the comparison.
type ReconfigArm struct {
	Mode      string
	Jobs      int
	Completed int
	Failed    int
	// MeanCompletionS / P95CompletionS are per-job submit→done times in
	// simulated seconds; MakespanS is the last completion.
	MeanCompletionS float64
	P95CompletionS  float64
	MakespanS       float64
	// EnergyWh integrates cluster GPU+CPU power over [0, MakespanS].
	EnergyWh float64
	// Controller counters (zero in the off arm).
	Reconfigs         int
	ReconfigWins      int
	ReconfigSkips     int
	ReconfigConflicts int
}

// ReconfigComparison pits reconfiguration-on against reconfiguration-off on
// the same replayed job burst and fleet-churn trace.
type ReconfigComparison struct {
	Off ReconfigArm
	On  ReconfigArm
	// CompletionGainX = Off.MeanCompletionS / On.MeanCompletionS.
	CompletionGainX float64
	// EnergyGainX = Off.EnergyWh / On.EnergyWh.
	EnergyGainX float64
}

// RunReconfig replays the burst and churn trace through both arms.
func RunReconfig(opts ReconfigOptions) (*ReconfigComparison, error) {
	mix := opts.Mix
	if len(mix.Tenants) == 0 {
		mix = reconfigMix()
	}
	arrivals, err := workload.PoissonTrace(mix, opts.Rate, opts.HorizonS, opts.Seed)
	if err != nil {
		return nil, err
	}
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("serving: empty reconfig job trace")
	}
	churn, err := workload.ChurnTrace(hardware.NDv4SKUName, opts.ChurnAddRate,
		opts.ChurnLifetimeS, opts.ChurnHorizonS, opts.ChurnSeed)
	if err != nil {
		return nil, err
	}
	off, err := runReconfigArm(opts, arrivals, churn, false)
	if err != nil {
		return nil, err
	}
	on, err := runReconfigArm(opts, arrivals, churn, true)
	if err != nil {
		return nil, err
	}
	cmp := &ReconfigComparison{Off: off, On: on}
	if on.MeanCompletionS > 0 {
		cmp.CompletionGainX = off.MeanCompletionS / on.MeanCompletionS
	}
	if on.EnergyWh > 0 {
		cmp.EnergyGainX = off.EnergyWh / on.EnergyWh
	}
	return cmp, nil
}

// runReconfigArm replays the traces against one freshly-provisioned shard
// stack, entirely in simulated time.
func runReconfigArm(opts ReconfigOptions, arrivals []workload.Arrival, churn []workload.FleetEvent, enabled bool) (ReconfigArm, error) {
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	vms := opts.VMs
	if vms <= 0 {
		vms = 1
	}
	for v := 0; v < vms; v++ {
		cl.AddVM(fmt.Sprintf("vm%d", v), hardware.NDv4SKUName, false)
	}
	rt, err := core.New(core.Config{
		Engine: se, Cluster: cl, Library: agents.DefaultLibrary(),
		RebalancePeriod: sim.Duration(opts.RebalancePeriodS),
	})
	if err != nil {
		return ReconfigArm{}, err
	}
	maxc := opts.MaxConcurrent
	if maxc <= 0 {
		maxc = len(arrivals)
	}
	sched := core.NewScheduler(se, rt, maxc)
	if enabled {
		sched.EnableReconfig(core.ReconfigConfig{Hysteresis: opts.Hysteresis})
	}

	arm := ReconfigArm{Mode: "reconfig-off", Jobs: len(arrivals)}
	if enabled {
		arm.Mode = "reconfig-on"
	}
	var completions []float64
	for _, arr := range arrivals {
		arr := arr
		se.After(sim.Duration(arr.AtS), func() {
			h, err := sched.Submit(arr.Tenant, arr.Job, core.SubmitOptions{RelaxFloor: true, KeepEngines: true})
			if err != nil {
				arm.Failed++
				return
			}
			h.OnDone(func(h *core.Handle) {
				if h.Status() != core.JobDone {
					arm.Failed++
					return
				}
				arm.Completed++
				done := se.Now().Seconds()
				completions = append(completions, done-arr.AtS)
				if done > arm.MakespanS {
					arm.MakespanS = done
				}
			})
		})
	}
	for _, ev := range churn {
		ev := ev
		se.After(sim.Duration(ev.AtS), func() {
			switch ev.Kind {
			case workload.FleetAddVM:
				cl.AddVM(ev.VM, ev.SKU, ev.Spot)
			case workload.FleetPreemptVM:
				cl.PreemptVM(ev.VM)
			}
		})
	}
	se.Run()

	if arm.Completed != len(arrivals) {
		return arm, fmt.Errorf("serving: reconfig arm %s completed %d/%d jobs (%d failed)",
			arm.Mode, arm.Completed, len(arrivals), arm.Failed)
	}
	sum := 0.0
	for _, c := range completions {
		sum += c
	}
	arm.MeanCompletionS = sum / float64(len(completions))
	sort.Float64s(completions)
	arm.P95CompletionS = percentile(completions, 0.95)
	arm.EnergyWh = (cl.GPUEnergyJoules(0, arm.MakespanS) + cl.CPUEnergyJoules(0, arm.MakespanS)) / 3600
	st := sched.Stats()
	arm.Reconfigs = st.Reconfigs
	arm.ReconfigWins = st.ReconfigWins
	arm.ReconfigSkips = st.ReconfigSkips
	arm.ReconfigConflicts = st.ReconfigConflicts
	return arm, nil
}

// String renders the comparison.
func (c *ReconfigComparison) String() string {
	var b []byte
	f := func(format string, args ...any) { b = append(b, fmt.Sprintf(format, args...)...) }
	f("Mid-flight reconfiguration under fleet churn (simulated time, replayed traces)\n")
	f("%-14s %6s %6s %12s %12s %12s %12s %7s %6s %6s\n",
		"mode", "jobs", "fail", "mean(s)", "p95(s)", "makespan(s)", "energy(Wh)", "evals", "wins", "skips")
	for _, m := range []ReconfigArm{c.Off, c.On} {
		f("%-14s %6d %6d %12.1f %12.1f %12.1f %12.1f %7d %6d %6d\n",
			m.Mode, m.Jobs, m.Failed, m.MeanCompletionS, m.P95CompletionS, m.MakespanS,
			m.EnergyWh, m.Reconfigs, m.ReconfigWins, m.ReconfigSkips)
	}
	f("Reconfiguration completion gain: %.3fx, energy gain: %.3fx\n", c.CompletionGainX, c.EnergyGainX)
	return string(b)
}
