// Package vectordb is an in-memory vector store with cosine-similarity
// search — the substrate behind the paper's §4 setup, where scene-summary
// embeddings are inserted into a VectorDB for question answering. It is a
// real (if small) index, not a stub: insertions validate dimensions, search
// returns exact top-k, and namespaces isolate workflows.
package vectordb

import (
	"fmt"
	"math"
	"sort"
)

// Doc is one stored vector with its payload.
type Doc struct {
	ID     string
	Vector []float64
	Text   string
	Meta   map[string]string
}

// Match is one search result.
type Match struct {
	Doc   Doc
	Score float64 // cosine similarity in [-1, 1]
}

// DB is a namespaced vector store. Not goroutine-safe: the simulation is
// single-threaded.
type DB struct {
	dim        int
	namespaces map[string][]Doc
	inserted   int
}

// New creates a store for vectors of the given dimension.
func New(dim int) *DB {
	if dim <= 0 {
		panic(fmt.Sprintf("vectordb: non-positive dimension %d", dim))
	}
	return &DB{dim: dim, namespaces: make(map[string][]Doc)}
}

// Dim returns the configured dimension.
func (db *DB) Dim() int { return db.dim }

// Len returns the document count in a namespace.
func (db *DB) Len(namespace string) int { return len(db.namespaces[namespace]) }

// TotalInserted returns lifetime insertions (for overhead accounting).
func (db *DB) TotalInserted() int { return db.inserted }

// Insert stores a document. Dimension mismatches and zero vectors are
// errors (a zero vector has no direction; cosine against it is undefined).
func (db *DB) Insert(namespace string, d Doc) error {
	if len(d.Vector) != db.dim {
		return fmt.Errorf("vectordb: vector dim %d, store dim %d", len(d.Vector), db.dim)
	}
	if norm(d.Vector) == 0 {
		return fmt.Errorf("vectordb: zero vector for doc %q", d.ID)
	}
	for _, existing := range db.namespaces[namespace] {
		if existing.ID == d.ID {
			return fmt.Errorf("vectordb: duplicate doc %q in namespace %q", d.ID, namespace)
		}
	}
	db.namespaces[namespace] = append(db.namespaces[namespace], d)
	db.inserted++
	return nil
}

// Search returns the top-k documents by cosine similarity to the query.
// k larger than the namespace returns everything, sorted.
func (db *DB) Search(namespace string, query []float64, k int) ([]Match, error) {
	if len(query) != db.dim {
		return nil, fmt.Errorf("vectordb: query dim %d, store dim %d", len(query), db.dim)
	}
	qn := norm(query)
	if qn == 0 {
		return nil, fmt.Errorf("vectordb: zero query vector")
	}
	if k <= 0 {
		return nil, fmt.Errorf("vectordb: non-positive k %d", k)
	}
	docs := db.namespaces[namespace]
	matches := make([]Match, 0, len(docs))
	for _, d := range docs {
		matches = append(matches, Match{Doc: d, Score: dot(query, d.Vector) / (qn * norm(d.Vector))})
	}
	sort.SliceStable(matches, func(i, j int) bool {
		if matches[i].Score != matches[j].Score {
			return matches[i].Score > matches[j].Score
		}
		return matches[i].Doc.ID < matches[j].Doc.ID
	})
	if k < len(matches) {
		matches = matches[:k]
	}
	return matches, nil
}

// Drop removes a namespace entirely.
func (db *DB) Drop(namespace string) { delete(db.namespaces, namespace) }

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(v []float64) float64 { return math.Sqrt(dot(v, v)) }

// Embed deterministically hashes text into a unit vector of the given
// dimension. It stands in for a real embedding model: identical texts map to
// identical vectors, and similar-prefix texts correlate, which is enough for
// the workflow plumbing and tests.
func Embed(text string, dim int) []float64 {
	v := make([]float64, dim)
	var h uint64 = 1469598103934665603 // FNV offset basis
	for i := 0; i < len(text); i++ {
		h ^= uint64(text[i])
		h *= 1099511628211
		v[i%dim] += float64(int64(h%2001)-1000) / 1000
	}
	n := norm(v)
	if n == 0 {
		v[0] = 1
		return v
	}
	for i := range v {
		v[i] /= n
	}
	return v
}
