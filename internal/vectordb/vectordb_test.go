package vectordb

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestInsertAndSearch(t *testing.T) {
	db := New(3)
	docs := []Doc{
		{ID: "x", Vector: []float64{1, 0, 0}, Text: "x axis"},
		{ID: "y", Vector: []float64{0, 1, 0}, Text: "y axis"},
		{ID: "xy", Vector: []float64{1, 1, 0}, Text: "diagonal"},
	}
	for _, d := range docs {
		if err := db.Insert("ns", d); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.Search("ns", []float64{1, 0.1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d matches, want 2", len(got))
	}
	if got[0].Doc.ID != "x" {
		t.Fatalf("best match = %s, want x", got[0].Doc.ID)
	}
	if got[0].Score < got[1].Score {
		t.Fatal("matches not sorted by score")
	}
}

func TestSearchKLargerThanStore(t *testing.T) {
	db := New(2)
	db.Insert("ns", Doc{ID: "a", Vector: []float64{1, 0}})
	got, err := db.Search("ns", []float64{1, 0}, 10)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
	if math.Abs(got[0].Score-1) > 1e-12 {
		t.Fatalf("self-similarity = %v, want 1", got[0].Score)
	}
}

func TestNamespaceIsolation(t *testing.T) {
	db := New(2)
	db.Insert("a", Doc{ID: "d", Vector: []float64{1, 0}})
	got, _ := db.Search("b", []float64{1, 0}, 5)
	if len(got) != 0 {
		t.Fatal("namespace b sees namespace a's docs")
	}
	if db.Len("a") != 1 || db.Len("b") != 0 {
		t.Fatal("Len wrong")
	}
	db.Drop("a")
	if db.Len("a") != 0 {
		t.Fatal("Drop did not clear namespace")
	}
}

func TestInsertErrors(t *testing.T) {
	db := New(2)
	if err := db.Insert("ns", Doc{ID: "bad", Vector: []float64{1}}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := db.Insert("ns", Doc{ID: "zero", Vector: []float64{0, 0}}); err == nil {
		t.Error("zero vector accepted")
	}
	db.Insert("ns", Doc{ID: "dup", Vector: []float64{1, 0}})
	if err := db.Insert("ns", Doc{ID: "dup", Vector: []float64{0, 1}}); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestSearchErrors(t *testing.T) {
	db := New(2)
	if _, err := db.Search("ns", []float64{1}, 1); err == nil {
		t.Error("query dim mismatch accepted")
	}
	if _, err := db.Search("ns", []float64{0, 0}, 1); err == nil {
		t.Error("zero query accepted")
	}
	if _, err := db.Search("ns", []float64{1, 0}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestEmbedDeterministicUnit(t *testing.T) {
	a := Embed("the quick brown fox", 16)
	b := Embed("the quick brown fox", 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Embed not deterministic")
		}
	}
	if math.Abs(norm(a)-1) > 1e-9 {
		t.Fatalf("Embed norm = %v, want 1", norm(a))
	}
	c := Embed("a completely different sentence", 16)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different texts produced identical embeddings")
	}
}

func TestEmbedRetrieval(t *testing.T) {
	// A document embedded and searched by its own text must rank first.
	db := New(32)
	texts := []string{
		"scene 0: cats playing with yarn",
		"scene 1: formula one cars racing",
		"scene 2: a chef cooking pasta",
	}
	for i, txt := range texts {
		if err := db.Insert("scenes", Doc{ID: fmt.Sprint(i), Vector: Embed(txt, 32), Text: txt}); err != nil {
			t.Fatal(err)
		}
	}
	for i, txt := range texts {
		got, err := db.Search("scenes", Embed(txt, 32), 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0].Doc.ID != fmt.Sprint(i) {
			t.Fatalf("query %q returned doc %s, want %d", txt, got[0].Doc.ID, i)
		}
	}
}

// Property: scores are within [-1, 1] (cosine bounds) for arbitrary stored
// and queried vectors.
func TestPropertyCosineBounds(t *testing.T) {
	f := func(raw []int8, q1, q2, q3 int8) bool {
		db := New(3)
		for i := 0; i+2 < len(raw); i += 3 {
			v := []float64{float64(raw[i]), float64(raw[i+1]), float64(raw[i+2])}
			if norm(v) == 0 {
				continue
			}
			db.Insert("p", Doc{ID: fmt.Sprint(i), Vector: v})
		}
		q := []float64{float64(q1), float64(q2), float64(q3)}
		if norm(q) == 0 {
			return true
		}
		got, err := db.Search("p", q, 1000)
		if err != nil {
			return false
		}
		for _, m := range got {
			if m.Score < -1-1e-9 || m.Score > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
