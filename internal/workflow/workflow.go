// Package workflow defines Murakkab's declarative programming model — the
// Listing 2 surface. A Job is a natural-language description, typed inputs,
// optional task hints, and a high-level constraint. Everything else (models,
// tools, hardware, parallelism) is the runtime's concern.
package workflow

import (
	"fmt"
	"strings"
)

// Constraint is the user's optimization objective (Listing 2's MIN_COST).
// The paper plans "multiple constraints with a priority ordering" as future
// work; we implement a single primary constraint plus an optional quality
// floor, and the optimizer ablations explore the rest.
type Constraint int

// Supported constraints.
const (
	// MinCost minimizes monetary cost, "potentially in exchange for latency".
	MinCost Constraint = iota
	// MinLatency minimizes workflow completion time.
	MinLatency
	// MinPower minimizes energy consumption.
	MinPower
	// MaxQuality maximizes result quality within resource availability.
	MaxQuality
)

// String returns the Listing 2 spelling.
func (c Constraint) String() string {
	switch c {
	case MinCost:
		return "MIN_COST"
	case MinLatency:
		return "MIN_LATENCY"
	case MinPower:
		return "MIN_POWER"
	case MaxQuality:
		return "MAX_QUALITY"
	default:
		return fmt.Sprintf("Constraint(%d)", int(c))
	}
}

// InputKind classifies job inputs.
type InputKind string

// Input kinds used by the built-in planner templates.
const (
	InputVideo InputKind = "video"
	InputText  InputKind = "text"
	InputUser  InputKind = "user-profile"
	InputTopic InputKind = "topic"
	InputDoc   InputKind = "document"
)

// Input is one typed job input with numeric attributes the planner uses to
// size work (durations, scene counts, token counts).
type Input struct {
	Name  string
	Kind  InputKind
	Attrs map[string]float64
}

// Attr returns an attribute with a default.
func (in Input) Attr(key string, def float64) float64 {
	if v, ok := in.Attrs[key]; ok {
		return v
	}
	return def
}

// Job is the declarative workflow specification (Listing 2).
type Job struct {
	// Description is the natural-language job statement, e.g.
	// "List objects shown/mentioned in the videos".
	Description string
	// Inputs are the job's data items.
	Inputs []Input
	// Tasks are optional sub-task hints ("Extract frames from each video").
	// If absent or insufficient, the orchestrator LLM decomposes the
	// description itself.
	Tasks []string
	// Constraint is the optimization objective.
	Constraint Constraint
	// MinQuality optionally floors acceptable result quality in [0,1];
	// zero means no floor.
	MinQuality float64
}

// Validate checks the specification.
func (j Job) Validate() error {
	if strings.TrimSpace(j.Description) == "" {
		return fmt.Errorf("workflow: job without description")
	}
	if len(j.Inputs) == 0 {
		return fmt.Errorf("workflow: job without inputs")
	}
	for i, in := range j.Inputs {
		if in.Name == "" {
			return fmt.Errorf("workflow: input %d without name", i)
		}
		if in.Kind == "" {
			return fmt.Errorf("workflow: input %q without kind", in.Name)
		}
	}
	if j.MinQuality < 0 || j.MinQuality > 1 {
		return fmt.Errorf("workflow: MinQuality %v outside [0,1]", j.MinQuality)
	}
	switch j.Constraint {
	case MinCost, MinLatency, MinPower, MaxQuality:
	default:
		return fmt.Errorf("workflow: unknown constraint %d", int(j.Constraint))
	}
	return nil
}

// VideoInput builds a video input: duration seconds split into scenes of
// sceneLen seconds with framesPerScene sampled frames each.
func VideoInput(name string, durationS float64, sceneLenS float64, framesPerScene int) Input {
	if sceneLenS <= 0 || durationS <= 0 || framesPerScene <= 0 {
		panic("workflow: non-positive video attributes")
	}
	scenes := durationS / sceneLenS
	if scenes != float64(int(scenes)) {
		scenes = float64(int(scenes) + 1)
	}
	return Input{
		Name: name,
		Kind: InputVideo,
		Attrs: map[string]float64{
			"duration_s":       durationS,
			"scene_len_s":      sceneLenS,
			"scenes":           scenes,
			"frames_per_scene": float64(framesPerScene),
		},
	}
}
