package workflow

import "testing"

func TestConstraintString(t *testing.T) {
	cases := map[Constraint]string{
		MinCost:    "MIN_COST",
		MinLatency: "MIN_LATENCY",
		MinPower:   "MIN_POWER",
		MaxQuality: "MAX_QUALITY",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
	if got := Constraint(99).String(); got != "Constraint(99)" {
		t.Errorf("unknown constraint = %q", got)
	}
}

func TestJobValidate(t *testing.T) {
	good := Job{
		Description: "List objects in the videos",
		Inputs:      []Input{VideoInput("cats.mov", 240, 30, 24)},
		Constraint:  MinCost,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []Job{
		{Inputs: good.Inputs},                            // no description
		{Description: "x"},                               // no inputs
		{Description: "x", Inputs: []Input{{}}},          // unnamed input
		{Description: "x", Inputs: []Input{{Name: "a"}}}, // kindless input
		{Description: "x", Inputs: good.Inputs, MinQuality: 1.5},
		{Description: "x", Inputs: good.Inputs, Constraint: Constraint(42)},
	}
	for i, j := range cases {
		if err := j.Validate(); err == nil {
			t.Errorf("case %d: invalid job accepted", i)
		}
	}
}

func TestVideoInput(t *testing.T) {
	in := VideoInput("cats.mov", 240, 30, 24)
	if in.Kind != InputVideo {
		t.Fatalf("kind = %q", in.Kind)
	}
	if got := in.Attr("scenes", 0); got != 8 {
		t.Fatalf("scenes = %v, want 8", got)
	}
	if got := in.Attr("frames_per_scene", 0); got != 24 {
		t.Fatalf("frames = %v", got)
	}
	// Non-divisible duration rounds scene count up.
	in = VideoInput("x.mov", 100, 30, 10)
	if got := in.Attr("scenes", 0); got != 4 {
		t.Fatalf("scenes = %v, want ceil(100/30) = 4", got)
	}
}

func TestVideoInputPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive duration did not panic")
		}
	}()
	VideoInput("x", 0, 30, 10)
}

func TestAttrDefault(t *testing.T) {
	in := Input{Name: "x", Kind: InputText}
	if got := in.Attr("missing", 7); got != 7 {
		t.Fatalf("Attr default = %v, want 7", got)
	}
}
