package hardware

import (
	"testing"
	"testing/quick"
)

func TestDefaultCatalogContainsTestbed(t *testing.T) {
	c := DefaultCatalog()
	vm, ok := c.VM(NDv4SKUName)
	if !ok {
		t.Fatalf("catalog missing paper testbed SKU %q", NDv4SKUName)
	}
	if vm.CPUCores != 96 {
		t.Errorf("ND96amsr cores = %d, want 96", vm.CPUCores)
	}
	if vm.GPUCount != 8 || vm.GPU != GPUA100 {
		t.Errorf("ND96amsr GPUs = %d×%s, want 8×A100-80GB", vm.GPUCount, vm.GPU)
	}
	if vm.CPU != EPYC7V12 {
		t.Errorf("ND96amsr CPU = %s, want EPYC 7V12", vm.CPU)
	}
}

func TestGPUGenerationOrdering(t *testing.T) {
	c := DefaultCatalog()
	v100 := c.MustGPU(GPUV100)
	a100 := c.MustGPU(GPUA100)
	h100 := c.MustGPU(GPUH100)
	// Table 1 "GPU Generation / Newer": higher cost, higher power,
	// lower-or-equal latency (i.e. more FLOPS).
	if !(v100.FP16TFLOPS < a100.FP16TFLOPS && a100.FP16TFLOPS < h100.FP16TFLOPS) {
		t.Error("FLOPS not increasing across generations")
	}
	if !(v100.HourlyUSD < a100.HourlyUSD && a100.HourlyUSD < h100.HourlyUSD) {
		t.Error("price not increasing across generations")
	}
	if !(v100.PeakWatts < a100.PeakWatts && a100.PeakWatts < h100.PeakWatts) {
		t.Error("peak power not increasing across generations")
	}
}

func TestSpeedupVs(t *testing.T) {
	c := DefaultCatalog()
	s := c.SpeedupVs(GPUH100, GPUA100)
	if s <= 1 {
		t.Fatalf("H100 speedup over A100 = %v, want > 1", s)
	}
	inv := c.SpeedupVs(GPUA100, GPUH100)
	if got := s * inv; got < 0.999 || got > 1.001 {
		t.Fatalf("speedup not reciprocal: %v * %v = %v", s, inv, got)
	}
	if c.SpeedupVs(GPUA100, GPUA100) != 1 {
		t.Fatal("self speedup != 1")
	}
}

func TestGPUPowerEndpointsAndClamp(t *testing.T) {
	c := DefaultCatalog()
	a100 := c.MustGPU(GPUA100)
	if got := GPUPower(a100, 0); got != a100.IdleWatts {
		t.Errorf("power at util 0 = %v, want idle %v", got, a100.IdleWatts)
	}
	if got := GPUPower(a100, 1); got != a100.PeakWatts {
		t.Errorf("power at util 1 = %v, want peak %v", got, a100.PeakWatts)
	}
	if got := GPUPower(a100, -3); got != a100.IdleWatts {
		t.Errorf("power at util -3 = %v, want clamped to idle", got)
	}
	if got := GPUPower(a100, 9); got != a100.PeakWatts {
		t.Errorf("power at util 9 = %v, want clamped to peak", got)
	}
}

func TestCPUPowerScalesWithCores(t *testing.T) {
	c := DefaultCatalog()
	epyc := c.MustCPU(EPYC7V12)
	one := CPUPower(epyc, 1, 0.5)
	many := CPUPower(epyc, 64, 0.5)
	if got := many / one; got < 63.9 || got > 64.1 {
		t.Fatalf("64-core power / 1-core power = %v, want 64", got)
	}
}

// Property: power is monotone in utilization and bounded by [idle, peak].
func TestPropertyGPUPowerMonotoneBounded(t *testing.T) {
	spec := DefaultCatalog().MustGPU(GPUA100)
	f := func(a, b float64) bool {
		// Map arbitrary floats into [0,1] deterministically.
		u1, u2 := clamp01(a), clamp01(b)
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		p1, p2 := GPUPower(spec, u1), GPUPower(spec, u2)
		return p1 <= p2 && p1 >= spec.IdleWatts && p2 <= spec.PeakWatts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clamp01(x float64) float64 {
	if x != x || x < 0 { // NaN or negative
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func TestPaperPowerRatioClaim(t *testing.T) {
	// §4: GPU complex "rated 16× higher than the CPU power". 8×A100 at 400W
	// = 3200W vs one EPYC package ~ 64 cores * 5.8W/core * ~(16/3200)... the
	// claim holds within 2x in our model: 3200 / (64*3.125) = 16.
	c := DefaultCatalog()
	gpuComplex := 8 * c.MustGPU(GPUA100).PeakWatts
	cpuPackage := CPUPower(c.MustCPU(EPYC7V12), 64, 1)
	ratio := gpuComplex / cpuPackage
	if ratio < 8 || ratio > 32 {
		t.Fatalf("GPU:CPU rated power ratio = %.1f, paper claims ~16 (allow 8-32)", ratio)
	}
}

func TestDuplicateGPUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate GPU spec did not panic")
		}
	}()
	g := GPUSpec{Type: GPUA100, MemoryGB: 1, FP16TFLOPS: 1, PeakWatts: 1, HourlyUSD: 0}
	NewCatalog([]GPUSpec{g, g}, nil, nil)
}

func TestVMReferencingUnknownGPUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VM referencing unknown GPU did not panic")
		}
	}()
	cpu := CPUSpec{Type: EPYC7V12, PerCoreGFLOPS: 1, PeakWattsPerCore: 1}
	NewCatalog(nil, []CPUSpec{cpu}, []VMSKU{{
		Name: "bad", CPU: EPYC7V12, CPUCores: 4, GPU: "nope", GPUCount: 1,
	}})
}

func TestInvalidSpotDiscountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("spot discount of 1.0 did not panic")
		}
	}()
	cpu := CPUSpec{Type: EPYC7V12, PerCoreGFLOPS: 1, PeakWattsPerCore: 1}
	NewCatalog(nil, []CPUSpec{cpu}, []VMSKU{{
		Name: "bad", CPU: EPYC7V12, CPUCores: 4, SpotDiscount: 1.0,
	}})
}

func TestGPUTypesSorted(t *testing.T) {
	ts := DefaultCatalog().GPUTypes()
	if len(ts) != 3 {
		t.Fatalf("GPUTypes len = %d, want 3", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i-1] >= ts[i] {
			t.Fatalf("GPUTypes not sorted: %v", ts)
		}
	}
}

func TestMustLookupsPanicOnUnknown(t *testing.T) {
	c := DefaultCatalog()
	for name, fn := range map[string]func(){
		"gpu": func() { c.MustGPU("bogus") },
		"cpu": func() { c.MustCPU("bogus") },
		"vm":  func() { c.MustVM("bogus") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Must%s lookup of unknown id did not panic", name)
				}
			}()
			fn()
		}()
	}
}
