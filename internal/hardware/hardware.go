// Package hardware models the hardware SKUs the paper's evaluation runs on:
// GPU generations, CPU types, and cloud VM shapes, each with power and price
// curves. The catalog is the ground truth consumed by the cluster simulator
// (capacities), the profiler (performance scaling), the optimizer (price and
// power trade-offs, Table 1), and the telemetry energy meter (Table 2).
//
// Power and price figures follow the public datasheets the paper cites
// (NVIDIA A100/H100 datasheets, Azure ND-series pricing); absolute accuracy
// is not the point — the optimizer only consumes relative shapes.
package hardware

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/contentkey"
)

// GPUType identifies a GPU generation/SKU.
type GPUType string

// GPU generations referenced by the paper (Table 1 "GPU Generation" lever and
// the §4 testbed). V100 is included as an older generation for ablations.
const (
	GPUV100 GPUType = "V100"
	GPUA100 GPUType = "A100-80GB"
	GPUH100 GPUType = "H100"
)

// CPUType identifies a CPU model.
type CPUType string

// EPYC7V12 is the CPU in the paper's Standard_ND96amsr_A100_v4 testbed.
const (
	EPYC7V12 CPUType = "AMD-EPYC-7V12"
)

// GPUSpec describes one GPU generation.
type GPUSpec struct {
	Type GPUType
	// MemoryGB is device memory, bounding KV-cache capacity in llmsim.
	MemoryGB int
	// FP16TFLOPS is dense half-precision throughput; performance profiles
	// scale with the ratio of this figure across generations.
	FP16TFLOPS float64
	// IdleWatts is power drawn while allocated but not computing.
	IdleWatts float64
	// PeakWatts is power at 100% utilization (TDP).
	PeakWatts float64
	// HourlyUSD is the amortized rental price of one GPU.
	HourlyUSD float64
}

// CPUSpec describes one CPU model on a per-core basis.
type CPUSpec struct {
	Type CPUType
	// PerCoreGFLOPS approximates per-core compute for profile scaling.
	PerCoreGFLOPS float64
	// IdleWattsPerCore and PeakWattsPerCore bound the per-core power range.
	IdleWattsPerCore float64
	PeakWattsPerCore float64
	// HourlyUSDPerCore is the amortized rental price of one core.
	HourlyUSDPerCore float64
}

// VMSKU describes a rentable VM shape.
type VMSKU struct {
	Name     string
	CPU      CPUType
	CPUCores int
	GPU      GPUType
	GPUCount int
	// HourlyUSD is the on-demand price for the whole VM.
	HourlyUSD float64
	// SpotDiscount is the fractional price reduction when rented as a Spot
	// VM (e.g. 0.7 → pays 30% of on-demand). Zero means no spot offering.
	SpotDiscount float64
}

// Catalog is an immutable set of hardware specs. Use DefaultCatalog for the
// paper's testbed; tests build narrower catalogs.
type Catalog struct {
	gpus map[GPUType]GPUSpec
	cpus map[CPUType]CPUSpec
	vms  map[string]VMSKU
	// fp caches Fingerprint (catalogs are immutable after NewCatalog).
	fp string
}

// NewCatalog builds a catalog from explicit spec lists. Duplicate names panic
// — a catalog with two definitions of "A100" has no sensible meaning.
func NewCatalog(gpus []GPUSpec, cpus []CPUSpec, vms []VMSKU) *Catalog {
	c := &Catalog{
		gpus: make(map[GPUType]GPUSpec, len(gpus)),
		cpus: make(map[CPUType]CPUSpec, len(cpus)),
		vms:  make(map[string]VMSKU, len(vms)),
	}
	for _, g := range gpus {
		if _, dup := c.gpus[g.Type]; dup {
			panic(fmt.Sprintf("hardware: duplicate GPU spec %q", g.Type))
		}
		validateGPU(g)
		c.gpus[g.Type] = g
	}
	for _, p := range cpus {
		if _, dup := c.cpus[p.Type]; dup {
			panic(fmt.Sprintf("hardware: duplicate CPU spec %q", p.Type))
		}
		validateCPU(p)
		c.cpus[p.Type] = p
	}
	for _, v := range vms {
		if _, dup := c.vms[v.Name]; dup {
			panic(fmt.Sprintf("hardware: duplicate VM SKU %q", v.Name))
		}
		c.validateVM(v)
		c.vms[v.Name] = v
	}
	return c
}

func validateGPU(g GPUSpec) {
	if g.MemoryGB <= 0 || g.FP16TFLOPS <= 0 || g.PeakWatts <= 0 || g.HourlyUSD < 0 {
		panic(fmt.Sprintf("hardware: invalid GPU spec %+v", g))
	}
	if g.IdleWatts < 0 || g.IdleWatts > g.PeakWatts {
		panic(fmt.Sprintf("hardware: GPU %q idle power outside [0, peak]", g.Type))
	}
}

func validateCPU(p CPUSpec) {
	if p.PerCoreGFLOPS <= 0 || p.PeakWattsPerCore <= 0 || p.HourlyUSDPerCore < 0 {
		panic(fmt.Sprintf("hardware: invalid CPU spec %+v", p))
	}
	if p.IdleWattsPerCore < 0 || p.IdleWattsPerCore > p.PeakWattsPerCore {
		panic(fmt.Sprintf("hardware: CPU %q idle power outside [0, peak]", p.Type))
	}
}

func (c *Catalog) validateVM(v VMSKU) {
	if v.CPUCores <= 0 {
		panic(fmt.Sprintf("hardware: VM %q without CPU cores", v.Name))
	}
	if _, ok := c.cpus[v.CPU]; !ok {
		panic(fmt.Sprintf("hardware: VM %q references unknown CPU %q", v.Name, v.CPU))
	}
	if v.GPUCount > 0 {
		if _, ok := c.gpus[v.GPU]; !ok {
			panic(fmt.Sprintf("hardware: VM %q references unknown GPU %q", v.Name, v.GPU))
		}
	}
	if v.SpotDiscount < 0 || v.SpotDiscount >= 1 {
		panic(fmt.Sprintf("hardware: VM %q spot discount %v outside [0,1)", v.Name, v.SpotDiscount))
	}
}

// GPU returns the spec for a GPU type; ok is false if absent.
func (c *Catalog) GPU(t GPUType) (GPUSpec, bool) {
	g, ok := c.gpus[t]
	return g, ok
}

// MustGPU returns the spec for a GPU type, panicking if absent. Use when the
// type came from the catalog itself.
func (c *Catalog) MustGPU(t GPUType) GPUSpec {
	g, ok := c.gpus[t]
	if !ok {
		panic(fmt.Sprintf("hardware: unknown GPU type %q", t))
	}
	return g
}

// CPU returns the spec for a CPU type; ok is false if absent.
func (c *Catalog) CPU(t CPUType) (CPUSpec, bool) {
	p, ok := c.cpus[t]
	return p, ok
}

// MustCPU returns the spec for a CPU type, panicking if absent.
func (c *Catalog) MustCPU(t CPUType) CPUSpec {
	p, ok := c.cpus[t]
	if !ok {
		panic(fmt.Sprintf("hardware: unknown CPU type %q", t))
	}
	return p
}

// VM returns a VM SKU by name; ok is false if absent.
func (c *Catalog) VM(name string) (VMSKU, bool) {
	v, ok := c.vms[name]
	return v, ok
}

// MustVM returns a VM SKU by name, panicking if absent.
func (c *Catalog) MustVM(name string) VMSKU {
	v, ok := c.vms[name]
	if !ok {
		panic(fmt.Sprintf("hardware: unknown VM SKU %q", name))
	}
	return v
}

// GPUTypes lists the catalog's GPU types in a stable (sorted) order.
func (c *Catalog) GPUTypes() []GPUType {
	out := make([]GPUType, 0, len(c.gpus))
	for t := range c.gpus {
		out = append(out, t)
	}
	sortGPUTypes(out)
	return out
}

func sortGPUTypes(ts []GPUType) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// Fingerprint renders the catalog's full content deterministically and
// injectively (length-prefixed names, semicolon-terminated numbers). Two
// catalogs with equal fingerprints behave identically everywhere specs are
// consumed, which is what lets content-keyed caches (shared profile stores,
// plan caches) treat distinct catalog instances as interchangeable. Every
// spec field must be serialized here. Catalogs are immutable, so the
// rendering is computed once.
func (c *Catalog) Fingerprint() string {
	if c.fp != "" {
		return c.fp
	}
	var b strings.Builder
	str := func(s string) { contentkey.WriteString(&b, s) }
	num := func(f float64) { contentkey.WriteFloat(&b, f) }
	for _, t := range c.GPUTypes() {
		g := c.gpus[t]
		b.WriteString("gpu")
		str(string(g.Type))
		contentkey.WriteInt(&b, g.MemoryGB)
		num(g.FP16TFLOPS)
		num(g.IdleWatts)
		num(g.PeakWatts)
		num(g.HourlyUSD)
	}
	cpus := make([]string, 0, len(c.cpus))
	for t := range c.cpus {
		cpus = append(cpus, string(t))
	}
	sort.Strings(cpus)
	for _, t := range cpus {
		p := c.cpus[CPUType(t)]
		b.WriteString("cpu")
		str(string(p.Type))
		num(p.PerCoreGFLOPS)
		num(p.IdleWattsPerCore)
		num(p.PeakWattsPerCore)
		num(p.HourlyUSDPerCore)
	}
	vms := make([]string, 0, len(c.vms))
	for n := range c.vms {
		vms = append(vms, n)
	}
	sort.Strings(vms)
	for _, n := range vms {
		v := c.vms[n]
		b.WriteString("vm")
		str(v.Name)
		str(string(v.CPU))
		contentkey.WriteInt(&b, v.CPUCores)
		str(string(v.GPU))
		contentkey.WriteInt(&b, v.GPUCount)
		num(v.HourlyUSD)
		num(v.SpotDiscount)
	}
	c.fp = b.String()
	return c.fp
}

// GPUPower returns instantaneous GPU power draw at a given utilization in
// [0,1], linearly interpolating between idle and peak. Utilization outside
// [0,1] is clamped.
func GPUPower(spec GPUSpec, util float64) float64 {
	return lerpPower(spec.IdleWatts, spec.PeakWatts, util)
}

// CPUPower returns instantaneous power for `cores` cores at a utilization in
// [0,1] applied across them.
func CPUPower(spec CPUSpec, cores int, util float64) float64 {
	return float64(cores) * lerpPower(spec.IdleWattsPerCore, spec.PeakWattsPerCore, util)
}

func lerpPower(idle, peak, util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return idle + (peak-idle)*util
}

// SpeedupVs returns the relative FP16 throughput of GPU a over GPU b, used by
// profiles to translate a measurement on one generation to another (Table 1
// "GPU Generation" lever).
func (c *Catalog) SpeedupVs(a, b GPUType) float64 {
	return c.MustGPU(a).FP16TFLOPS / c.MustGPU(b).FP16TFLOPS
}

// NDv4SKUName is the paper's testbed VM shape.
const NDv4SKUName = "Standard_ND96amsr_A100_v4"

var (
	defaultCatalogOnce sync.Once
	defaultCatalog     *Catalog
)

// DefaultCatalog reproduces the paper's §4 testbed plus the neighbouring
// SKUs the optimizer may consider (H100 boxes for the GPU-generation lever,
// a CPU-only shape for CPU offload).
//
// Catalogs are immutable, so every caller shares one instance; building (and
// fingerprinting) it per call showed up as a top allocation site when the
// serving benchmark spins up hundreds of per-request testbeds. The
// fingerprint memo is pre-warmed inside the Once so the shared instance is
// never lazily written after publication.
func DefaultCatalog() *Catalog {
	defaultCatalogOnce.Do(func() {
		defaultCatalog = buildDefaultCatalog()
		defaultCatalog.Fingerprint()
	})
	return defaultCatalog
}

func buildDefaultCatalog() *Catalog {
	gpus := []GPUSpec{
		{
			Type:       GPUV100,
			MemoryGB:   32,
			FP16TFLOPS: 125,
			IdleWatts:  40,
			PeakWatts:  300,
			HourlyUSD:  1.20,
		},
		{
			// NVIDIA A100-80GB SXM: 400W TDP per the datasheet the paper cites.
			Type:       GPUA100,
			MemoryGB:   80,
			FP16TFLOPS: 312,
			IdleWatts:  55,
			PeakWatts:  400,
			HourlyUSD:  3.40,
		},
		{
			// NVIDIA H100 SXM: 700W TDP, ~3x A100 dense FP16.
			Type:       GPUH100,
			MemoryGB:   80,
			FP16TFLOPS: 989,
			IdleWatts:  70,
			PeakWatts:  700,
			HourlyUSD:  8.20,
		},
	}
	cpus := []CPUSpec{
		{
			// AMD EPYC 7V12: 64 cores, 240W TDP → per-core peak ≈ 240/64 =
			// 3.75W (we use 3.6 plus a 0.8W idle floor). The paper's claim
			// that the 8-GPU complex is "rated 16× higher than the CPU power"
			// checks out: 8×400W / (64×3.6W) ≈ 14×.
			Type:             EPYC7V12,
			PerCoreGFLOPS:    38,
			IdleWattsPerCore: 0.8,
			PeakWattsPerCore: 3.6,
			HourlyUSDPerCore: 0.036,
		},
	}
	vms := []VMSKU{
		{
			Name:         NDv4SKUName,
			CPU:          EPYC7V12,
			CPUCores:     96,
			GPU:          GPUA100,
			GPUCount:     8,
			HourlyUSD:    27.20,
			SpotDiscount: 0.68,
		},
		{
			Name:         "Standard_ND96isr_H100_v5",
			CPU:          EPYC7V12,
			CPUCores:     96,
			GPU:          GPUH100,
			GPUCount:     8,
			HourlyUSD:    69.12,
			SpotDiscount: 0.55,
		},
		{
			Name:         "Standard_HB120rs_v3",
			CPU:          EPYC7V12,
			CPUCores:     120,
			GPUCount:     0,
			HourlyUSD:    3.60,
			SpotDiscount: 0.75,
		},
	}
	return NewCatalog(gpus, cpus, vms)
}
