package cascade

import (
	"math"
	"testing"

	"repro/internal/agents"
	"repro/internal/hardware"
	"repro/internal/planner"
)

func twoLevel() Cascade {
	return Cascade{Levels: []Level{
		{Implementation: "cheap", Quality: 0.8, CostUSD: 1, LatencyS: 1,
			AcceptCorrect: 0.9, AcceptIncorrect: 0.1},
		{Implementation: "strong", Quality: 0.95, CostUSD: 10, LatencyS: 5},
	}}
}

func TestValidate(t *testing.T) {
	if err := twoLevel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := twoLevel()
	bad.Levels[0].Quality = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("bad quality accepted")
	}
	bad = twoLevel()
	bad.Levels[1].CostUSD = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cost accepted")
	}
	if err := (Cascade{}).Validate(); err == nil {
		t.Error("empty cascade accepted")
	}
}

func TestExpectTwoLevelClosedForm(t *testing.T) {
	c := twoLevel()
	e, err := c.Expect()
	if err != nil {
		t.Fatal(err)
	}
	// Stop at level 0: correct·d + incorrect·f = 0.8·0.9 + 0.2·0.1 = 0.74.
	if math.Abs(e.StopProb[0]-0.74) > 1e-12 {
		t.Fatalf("stop[0] = %v, want 0.74", e.StopProb[0])
	}
	if math.Abs(e.StopProb[1]-0.26) > 1e-12 {
		t.Fatalf("stop[1] = %v, want 0.26", e.StopProb[1])
	}
	// Quality: correct-and-accepted at 0 (0.72) + escalated·0.95 (0.26·0.95).
	wantQ := 0.72 + 0.26*0.95
	if math.Abs(e.Quality-wantQ) > 1e-12 {
		t.Fatalf("quality = %v, want %v", e.Quality, wantQ)
	}
	// Cost: always pay level 0, escalations pay level 1.
	wantC := 1 + 0.26*10
	if math.Abs(e.CostUSD-wantC) > 1e-12 {
		t.Fatalf("cost = %v, want %v", e.CostUSD, wantC)
	}
	if math.Abs(e.MeanLevels-1.26) > 1e-12 {
		t.Fatalf("mean levels = %v, want 1.26", e.MeanLevels)
	}
	// Stop probabilities sum to 1.
	sum := 0.0
	for _, p := range e.StopProb {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("stop probs sum to %v", sum)
	}
}

func TestSingleLevelDegeneratesToModel(t *testing.T) {
	c := Cascade{Levels: []Level{{Implementation: "only", Quality: 0.9, CostUSD: 3, LatencyS: 2}}}
	e, err := c.Expect()
	if err != nil {
		t.Fatal(err)
	}
	if e.Quality != 0.9 || e.CostUSD != 3 || e.LatencyS != 2 || e.MeanLevels != 1 {
		t.Fatalf("degenerate cascade = %+v", e)
	}
}

func TestPerfectJudgeRecoversBestQuality(t *testing.T) {
	c := twoLevel()
	c.Levels[0].AcceptCorrect = 1
	c.Levels[0].AcceptIncorrect = 0
	e, _ := c.Expect()
	// Perfect judge: all wrong answers escalate → quality = q0 + (1-q0)·q1.
	want := 0.8 + 0.2*0.95
	if math.Abs(e.Quality-want) > 1e-12 {
		t.Fatalf("quality = %v, want %v", e.Quality, want)
	}
}

func TestCompare(t *testing.T) {
	cmp, err := twoLevel().Compare()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CostReduction <= 1 {
		t.Fatalf("cost reduction = %v, want > 1 (that's the point)", cmp.CostReduction)
	}
	// The delta can be slightly negative: escalated queries get two chances
	// (an ensemble effect), which can beat the strong model alone.
	if math.Abs(cmp.QualityDelta) > 0.05 {
		t.Fatalf("quality delta = %v, want |delta| ≤ 0.05", cmp.QualityDelta)
	}
}

func TestForSummarizationFromLibrary(t *testing.T) {
	cat := hardware.DefaultCatalog()
	lib := agents.DefaultLibrary()
	store, err := agents.NewProfiler(cat).ProfileLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ForSummarization(lib, store, cat, hardware.EPYC7V12, planner.SummarizeWork(), 0.92)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Levels) != 3 {
		t.Fatalf("levels = %d", len(c.Levels))
	}
	// Cheapest-first and quality-increasing (FrugalGPT's premise).
	for i := 1; i < len(c.Levels); i++ {
		if c.Levels[i].CostUSD <= c.Levels[i-1].CostUSD {
			t.Fatalf("costs not increasing: %+v", c.Levels)
		}
		if c.Levels[i].Quality < c.Levels[i-1].Quality {
			t.Fatalf("quality not nondecreasing: %+v", c.Levels)
		}
	}
	cmp, err := c.Compare()
	if err != nil {
		t.Fatal(err)
	}
	// The §5 claim in numbers: large cost cut, small quality loss.
	if cmp.CostReduction < 2 {
		t.Fatalf("cost reduction = %.2f, want ≥ 2", cmp.CostReduction)
	}
	if cmp.QualityDelta > 0.05 {
		t.Fatalf("quality delta = %.3f, want ≤ 0.05", cmp.QualityDelta)
	}
}

func TestSortByCost(t *testing.T) {
	c := Cascade{Levels: []Level{
		{Implementation: "b", CostUSD: 5, Quality: 0.9},
		{Implementation: "a", CostUSD: 1, Quality: 0.8},
	}}
	c.SortByCost()
	if c.Levels[0].Implementation != "a" {
		t.Fatalf("order = %+v", c.Levels)
	}
}
