// Package cascade implements the model-cascade pattern the paper's §5
// invokes via FrugalGPT [11]: route each query to the cheapest model first,
// score its answer, and escalate to stronger (costlier) models only when the
// scorer rejects — trading a small quality delta for a large cost reduction
// on the easy-query majority.
//
// The analytic model per level i (ordered cheap → strong): the level's
// answer is correct with probability q_i; the scorer accepts a correct
// answer with probability d_i (its true-positive rate) and wrongly accepts
// an incorrect one with probability f_i (false-positive rate). Rejected
// queries escalate; the last level always answers.
package cascade

import (
	"fmt"
	"sort"

	"repro/internal/agents"
	"repro/internal/hardware"
	"repro/internal/profiles"
)

// Level is one model in the cascade.
type Level struct {
	Implementation string
	// Quality is the model's per-query accuracy in [0,1].
	Quality float64
	// CostUSD and LatencyS are per-query execution costs.
	CostUSD  float64
	LatencyS float64
	// AcceptCorrect (d) and AcceptIncorrect (f) are the scorer's rates for
	// this level. The final level's scorer is ignored (always accepted).
	AcceptCorrect   float64
	AcceptIncorrect float64
}

// Cascade is an ordered set of levels, cheapest first.
type Cascade struct {
	Levels []Level
}

// Validate checks the cascade.
func (c Cascade) Validate() error {
	if len(c.Levels) == 0 {
		return fmt.Errorf("cascade: empty")
	}
	for i, l := range c.Levels {
		if l.Quality < 0 || l.Quality > 1 ||
			l.AcceptCorrect < 0 || l.AcceptCorrect > 1 ||
			l.AcceptIncorrect < 0 || l.AcceptIncorrect > 1 {
			return fmt.Errorf("cascade: level %d (%s) has probabilities outside [0,1]", i, l.Implementation)
		}
		if l.CostUSD < 0 || l.LatencyS < 0 {
			return fmt.Errorf("cascade: level %d (%s) has negative cost", i, l.Implementation)
		}
	}
	return nil
}

// Expectation is the cascade's analytic behaviour per query.
type Expectation struct {
	Quality  float64
	CostUSD  float64
	LatencyS float64
	// MeanLevels is the expected number of models invoked.
	MeanLevels float64
	// StopProb[i] is the probability the cascade answers at level i.
	StopProb []float64
}

// Expect computes the closed-form expectation.
func (c Cascade) Expect() (Expectation, error) {
	if err := c.Validate(); err != nil {
		return Expectation{}, err
	}
	var e Expectation
	e.StopProb = make([]float64, len(c.Levels))
	reach := 1.0
	for i, l := range c.Levels {
		e.CostUSD += reach * l.CostUSD
		e.LatencyS += reach * l.LatencyS
		e.MeanLevels += reach
		last := i == len(c.Levels)-1
		var stop, stopCorrect float64
		if last {
			stop = 1
			stopCorrect = l.Quality
		} else {
			// Accept correct answers at rate d, incorrect at rate f.
			stopCorrect = l.Quality * l.AcceptCorrect
			stop = stopCorrect + (1-l.Quality)*l.AcceptIncorrect
		}
		e.StopProb[i] = reach * stop
		e.Quality += reach * stopCorrect
		reach *= 1 - stop
	}
	return e, nil
}

// ForSummarization builds a summarization cascade from the default library:
// llama-8b → llama-70b → nvlm-72b, each on its cheapest profiled config,
// with scorer rates derived from a judge of the given reliability.
// work is the per-query token work (e.g. planner.SummarizeWork()).
func ForSummarization(lib *agents.Library, store *profiles.Store,
	cat *hardware.Catalog, cpu hardware.CPUType, work, judgeReliability float64) (Cascade, error) {
	order := []string{agents.ImplLlama8B, agents.ImplLlama70B, agents.ImplNVLM}
	var c Cascade
	for _, name := range order {
		im, ok := lib.Get(name)
		if !ok {
			return Cascade{}, fmt.Errorf("cascade: %s not in library", name)
		}
		prof, err := cheapestProfile(store, cat, cpu, name, work)
		if err != nil {
			return Cascade{}, err
		}
		c.Levels = append(c.Levels, Level{
			Implementation:  name,
			Quality:         im.Quality,
			CostUSD:         prof.CostUSD(cat, cpu, work),
			LatencyS:        prof.LatencyS(work),
			AcceptCorrect:   judgeReliability,
			AcceptIncorrect: 1 - judgeReliability,
		})
	}
	return c, nil
}

// cheapestProfile picks the implementation's GPU profile with minimal cost
// for the given work (CPU profiles of large LLMs are excluded: impractical
// single-query latency, the paper's "too slow to execute practically").
func cheapestProfile(store *profiles.Store, cat *hardware.Catalog,
	cpu hardware.CPUType, impl string, work float64) (profiles.Profile, error) {
	var best profiles.Profile
	found := false
	for _, p := range store.ForImplementation(impl) {
		if p.Config.GPUs == 0 {
			continue
		}
		if !found || p.CostUSD(cat, cpu, work) < best.CostUSD(cat, cpu, work) {
			best, found = p, true
		}
	}
	if !found {
		return profiles.Profile{}, fmt.Errorf("cascade: no GPU profile for %s", impl)
	}
	return best, nil
}

// CompareToBest contrasts the cascade against always using its strongest
// level.
type Comparison struct {
	Cascade     Expectation
	BestQuality float64
	BestCostUSD float64
	// CostReduction = best cost / cascade cost.
	CostReduction float64
	// QualityDelta = best quality − cascade quality (≥ 0 normally).
	QualityDelta float64
}

// Compare computes the contrast.
func (c Cascade) Compare() (Comparison, error) {
	e, err := c.Expect()
	if err != nil {
		return Comparison{}, err
	}
	last := c.Levels[len(c.Levels)-1]
	cmp := Comparison{
		Cascade:      e,
		BestQuality:  last.Quality,
		BestCostUSD:  last.CostUSD,
		QualityDelta: last.Quality - e.Quality,
	}
	if e.CostUSD > 0 {
		cmp.CostReduction = last.CostUSD / e.CostUSD
	}
	return cmp, nil
}

// SortByCost orders levels cheapest-first (the canonical cascade order).
func (c *Cascade) SortByCost() {
	sort.SliceStable(c.Levels, func(i, j int) bool {
		return c.Levels[i].CostUSD < c.Levels[j].CostUSD
	})
}
