package imperative

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workflow"

	"repro/internal/agents"
)

func paperVideos() []workflow.Input {
	return []workflow.Input{
		workflow.VideoInput("cats.mov", 240, 30, 24),
		workflow.VideoInput("formula_1.mov", 240, 30, 24),
	}
}

func runBaseline(t *testing.T, videos []workflow.Input) (*sim.Engine, *cluster.Cluster, *report.Report) {
	t.Helper()
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	cl.AddVM("vm1", hardware.NDv4SKUName, false)
	r := NewRunner(se, cl, agents.DefaultLibrary())
	rep, err := r.Run(DefaultVideoPipeline(), videos)
	if err != nil {
		t.Fatal(err)
	}
	se.Run()
	return se, cl, rep
}

func TestBaselineCompletesAllScenes(t *testing.T) {
	_, _, rep := runBaseline(t, paperVideos())
	// 16 scenes × 5 stages.
	if rep.TasksCompleted != 80 {
		t.Fatalf("tasks completed = %d, want 80", rep.TasksCompleted)
	}
	if rep.Tracer.OpenCount() != 0 {
		t.Fatalf("open spans = %d", rep.Tracer.OpenCount())
	}
}

func TestBaselineMakespanNearPaper(t *testing.T) {
	_, _, rep := runBaseline(t, paperVideos())
	// The paper's baseline completes in 283 s (285 in Table 2). Calibration
	// tolerance: ±15%.
	if rep.MakespanS < 240 || rep.MakespanS > 330 {
		t.Fatalf("baseline makespan = %.1f s, want ≈ 283 s", rep.MakespanS)
	}
}

func TestBaselineEnergyNearPaper(t *testing.T) {
	_, _, rep := runBaseline(t, paperVideos())
	// Table 2 baseline: 155 Wh GPU energy. Tolerance ±25% (the same band
	// EXPERIMENTS.md reports; the simulated power model undershoots the
	// paper's measured batch-1 decode power slightly).
	if rep.GPUEnergyWh < 116 || rep.GPUEnergyWh > 194 {
		t.Fatalf("baseline GPU energy = %.1f Wh, want ≈ 155 Wh", rep.GPUEnergyWh)
	}
}

func TestBaselineSequentialNoOverlap(t *testing.T) {
	_, _, rep := runBaseline(t, paperVideos())
	// Strict sequencing: no two spans overlap anywhere in the pipeline.
	spans := rep.Tracer.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End-1e-9 {
			t.Fatalf("spans overlap: %+v then %+v", spans[i-1], spans[i])
		}
	}
}

func TestBaselineUnderutilizes(t *testing.T) {
	_, _, rep := runBaseline(t, paperVideos())
	// Figure 3's point: the baseline "severely underutilizes resources".
	if rep.MeanGPUUtil > 0.25 {
		t.Fatalf("baseline mean GPU util = %.2f, expected < 0.25", rep.MeanGPUUtil)
	}
	if rep.MeanCPUUtil > 0.10 {
		t.Fatalf("baseline mean CPU util = %.2f, expected < 0.10", rep.MeanCPUUtil)
	}
}

func TestBaselineTracksMatchFigure3(t *testing.T) {
	_, _, rep := runBaseline(t, paperVideos())
	want := map[string]bool{
		"Frame Extraction": false, "Speech-to-Text": false,
		"Object Detection": false, "LLM (Text)": false, "LLM (Embeddings)": false,
	}
	for _, tr := range rep.Tracer.Tracks() {
		want[tr] = true
	}
	for tr, seen := range want {
		if !seen {
			t.Errorf("missing track %q", tr)
		}
	}
}

func TestBaselineVectorDBPopulated(t *testing.T) {
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	cl.AddVM("vm1", hardware.NDv4SKUName, false)
	r := NewRunner(se, cl, agents.DefaultLibrary())
	if _, err := r.Run(DefaultVideoPipeline(), paperVideos()); err != nil {
		t.Fatal(err)
	}
	se.Run()
	if got := r.VectorDB().Len("scenes"); got != 16 {
		t.Fatalf("vectordb has %d scene embeddings, want 16", got)
	}
}

func TestBaselineResourcesReleasedAtEnd(t *testing.T) {
	_, cl, rep := runBaseline(t, paperVideos())
	if free := cl.FreeGPUs(hardware.GPUA100); free != 16 {
		t.Fatalf("free GPUs after run = %d, want 16", free)
	}
	if free := cl.FreeCPUCores(); free != 192 {
		t.Fatalf("free cores after run = %d, want 192", free)
	}
	_ = rep
}

func TestBaselineScalesWithWork(t *testing.T) {
	_, _, small := runBaseline(t, []workflow.Input{workflow.VideoInput("a.mov", 120, 30, 24)})
	_, _, large := runBaseline(t, []workflow.Input{workflow.VideoInput("a.mov", 480, 30, 24)})
	ratio := large.MakespanS / small.MakespanS
	if math.Abs(ratio-4) > 0.5 {
		t.Fatalf("makespan ratio = %.2f for 4× scenes, want ≈ 4 (sequential)", ratio)
	}
}

func TestBaselineRejectsNonVideo(t *testing.T) {
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	r := NewRunner(se, cl, agents.DefaultLibrary())
	_, err := r.Run(DefaultVideoPipeline(), []workflow.Input{{Name: "x", Kind: workflow.InputText}})
	if err == nil {
		t.Fatal("non-video input accepted")
	}
}

func TestBaselineFailsWithoutResources(t *testing.T) {
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	// Only a CPU VM: the 1-GPU whisper binding cannot be satisfied.
	cl.AddVM("cpu0", "Standard_HB120rs_v3", false)
	r := NewRunner(se, cl, agents.DefaultLibrary())
	if _, err := r.Run(DefaultVideoPipeline(), paperVideos()); err == nil {
		t.Fatal("pipeline placed without GPUs")
	}
}
