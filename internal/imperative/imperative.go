// Package imperative reproduces today's programming model — the paper's
// Listing 1, derived from OmAgent: explicit components bound to specific
// models, providers (API keys) and fixed resource amounts, executed in a
// rigid sequential flow. It is the evaluation baseline: "a fixed execution
// without any intra-task parallelism or opportunity to utilize idle
// resources. Each scene and its constituent frames are processed
// sequentially."
//
// The inefficiencies are structural, not simulated: every component holds
// its fixed allocation for the entire run (resource stranding), and scenes
// flow through the pipeline one at a time (no multiplexing) — which is
// exactly what Figure 3's baseline trace shows.
package imperative

import (
	"fmt"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/llmsim"
	"repro/internal/planner"
	"repro/internal/profiles"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/vectordb"
	"repro/internal/workflow"
)

// Component is one pipeline stage with its explicit binding — the Listing 1
// Tool/MLModel/LLM constructors collapse to this struct.
type Component struct {
	// Display is the track name in traces ("Speech-to-Text").
	Display string
	// Impl names the concrete implementation ("whisper-large-v3").
	Impl string
	// Config is the fixed resource binding (Listing 1's resources={...}).
	Config profiles.ResourceConfig
	// Key decorates the component with its provider credential
	// (OPENAI_API_KEY and friends); unused by execution, present because
	// today's frameworks force it into the workflow definition.
	Key string
	// Params are model/tool-specific parameters (sampling_rate,
	// context_len, prompts...).
	Params map[string]string
}

// Tool constructs a tool component (Listing 1 line 2).
func Tool(display, impl string, cfg profiles.ResourceConfig, key string, params map[string]string) Component {
	return Component{Display: display, Impl: impl, Config: cfg, Key: key, Params: params}
}

// MLModel constructs an ML-model component (Listing 1 lines 3-4).
func MLModel(display, impl string, cfg profiles.ResourceConfig, key string) Component {
	return Component{Display: display, Impl: impl, Config: cfg, Key: key}
}

// LLM constructs an LLM component (Listing 1 lines 5-8).
func LLM(display, impl string, cfg profiles.ResourceConfig, key string, params map[string]string) Component {
	return Component{Display: display, Impl: impl, Config: cfg, Key: key, Params: params}
}

// VideoPipeline is the Listing 1 workflow:
// frame_ext -> stt -> obj_det -> summarize (with the §4 embeddings insert).
type VideoPipeline struct {
	FrameExtractor Component
	STT            Component
	ObjectDetector Component
	Summarizer     Component
	Embedder       Component
}

// DefaultVideoPipeline binds the paper's exact components: OpenCV on 1 CPU,
// Whisper on 1 GPU, CLIP on 2 CPUs, NVLM on 8 GPUs plus 2 embedding GPUs.
func DefaultVideoPipeline() VideoPipeline {
	return VideoPipeline{
		FrameExtractor: Tool("Frame Extraction", agents.ImplOpenCV,
			profiles.ResourceConfig{CPUCores: 1}, "ON_PREM_SSH_KEY",
			map[string]string{"sampling_rate": "15"}),
		STT: MLModel("Speech-to-Text", agents.ImplWhisper,
			profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100}, "OPENAI_API_KEY"),
		ObjectDetector: MLModel("Object Detection", agents.ImplCLIP,
			profiles.ResourceConfig{CPUCores: 2}, "AWS_SSH_KEY"),
		Summarizer: LLM("LLM (Text)", agents.ImplNVLM,
			profiles.ResourceConfig{GPUs: 8, GPUType: hardware.GPUA100}, "DATABRICKS_API_KEY",
			map[string]string{
				"context_len":   "4096",
				"system_prompt": "You are an agent that can describe images in detail.",
				"user_prompt":   "Summarize the scenes using frames, detected objects and transcripts.",
			}),
		Embedder: LLM("LLM (Embeddings)", agents.ImplNVLMEmbed,
			profiles.ResourceConfig{GPUs: 2, GPUType: hardware.GPUA100}, "DATABRICKS_API_KEY", nil),
	}
}

// Runner executes VideoPipelines on a cluster.
type Runner struct {
	se  *sim.Engine
	cl  *cluster.Cluster
	lib *agents.Library
	cat *hardware.Catalog
	db  *vectordb.DB
}

// NewRunner creates a baseline runner.
func NewRunner(se *sim.Engine, cl *cluster.Cluster, lib *agents.Library) *Runner {
	return &Runner{se: se, cl: cl, lib: lib, cat: cl.Catalog(), db: vectordb.New(64)}
}

// VectorDB exposes the store the embedding stage writes to.
func (r *Runner) VectorDB() *vectordb.DB { return r.db }

// scene is one unit of sequential processing.
type scene struct {
	video  string
	index  int
	audioS float64
	frames float64
}

// Run executes the pipeline over the videos and, when the simulation
// engine is run, completes with a report. It returns the report pointer
// immediately; fields are populated once the simulation drains.
func (r *Runner) Run(p VideoPipeline, videos []workflow.Input) (*report.Report, error) {
	var scenes []scene
	for _, v := range videos {
		if v.Kind != workflow.InputVideo {
			return nil, fmt.Errorf("imperative: input %q is %s, want video", v.Name, v.Kind)
		}
		n := int(v.Attr("scenes", 1))
		for s := 0; s < n; s++ {
			scenes = append(scenes, scene{
				video:  v.Name,
				index:  s,
				audioS: v.Attr("scene_len_s", 30),
				frames: v.Attr("frames_per_scene", 24),
			})
		}
	}
	if len(scenes) == 0 {
		return nil, fmt.Errorf("imperative: no scenes to process")
	}

	// Fixed provisioning: every component's resources are held for the
	// whole run, exactly as Listing 1 configures them.
	extAlloc, err := r.cl.AllocCPUs(p.FrameExtractor.Config.CPUCores)
	if err != nil {
		return nil, fmt.Errorf("imperative: frame extractor: %w", err)
	}
	sttAlloc, err := r.cl.AllocGPUs(p.STT.Config.GPUs, p.STT.Config.GPUType)
	if err != nil {
		return nil, fmt.Errorf("imperative: stt: %w", err)
	}
	detAlloc, err := r.cl.AllocCPUs(p.ObjectDetector.Config.CPUCores)
	if err != nil {
		return nil, fmt.Errorf("imperative: object detector: %w", err)
	}
	textAlloc, err := r.cl.AllocGPUs(p.Summarizer.Config.GPUs, p.Summarizer.Config.GPUType)
	if err != nil {
		return nil, fmt.Errorf("imperative: summarizer: %w", err)
	}
	textEngine, err := llmsim.NewEngine(r.se, r.cat, llmsim.NVLMText(), textAlloc)
	if err != nil {
		return nil, err
	}
	embedAlloc, err := r.cl.AllocGPUs(p.Embedder.Config.GPUs, p.Embedder.Config.GPUType)
	if err != nil {
		return nil, fmt.Errorf("imperative: embedder: %w", err)
	}
	embedEngine, err := llmsim.NewEngine(r.se, r.cat, llmsim.NVLMEmbed(), embedAlloc)
	if err != nil {
		return nil, err
	}

	tracer := telemetry.NewTracer()
	rep := &report.Report{Name: "baseline", Tracer: tracer}
	run := &baselineRun{
		r: r, p: p, scenes: scenes, tracer: tracer, rep: rep,
		extAlloc: extAlloc, sttAlloc: sttAlloc, detAlloc: detAlloc,
		textEngine: textEngine, embedEngine: embedEngine,
		release: func() {
			extAlloc.Release()
			sttAlloc.Release()
			detAlloc.Release()
			textAlloc.Release()
			embedAlloc.Release()
		},
	}
	run.processScene(0)
	return rep, nil
}

type baselineRun struct {
	r      *Runner
	p      VideoPipeline
	scenes []scene
	tracer *telemetry.Tracer
	rep    *report.Report

	extAlloc    *cluster.CPUAlloc
	sttAlloc    *cluster.GPUAlloc
	detAlloc    *cluster.CPUAlloc
	textEngine  *llmsim.Engine
	embedEngine *llmsim.Engine
	release     func()
}

// stepOn runs one fixed-allocation component for its ground-truth duration,
// driving intensity and tracing, then continues.
func (b *baselineRun) stepOn(display, impl string, cfg profiles.ResourceConfig, work float64,
	setIntensity func(float64), label string, next func()) {
	im, ok := b.r.lib.Get(impl)
	if !ok {
		panic(fmt.Sprintf("imperative: unknown implementation %q", impl))
	}
	dur, err := im.Perf.LatencyS(work, cfg, b.r.cat)
	if err != nil {
		panic(fmt.Sprintf("imperative: %s on %v: %v", impl, cfg, err))
	}
	span := b.tracer.Start(display, label, b.r.se.Now().Seconds())
	if cfg.GPUs > 0 {
		setIntensity(im.Perf.GPUIntensity)
	} else {
		setIntensity(im.Perf.CPUIntensity)
	}
	b.r.se.After(sim.Duration(dur), func() {
		setIntensity(0)
		b.tracer.End(span, b.r.se.Now().Seconds())
		b.rep.TasksCompleted++
		next()
	})
}

// processScene runs the strict per-scene chain:
// extract → stt → detect → summarize → embed → next scene.
func (b *baselineRun) processScene(i int) {
	if i == len(b.scenes) {
		b.finish()
		return
	}
	sc := b.scenes[i]
	label := fmt.Sprintf("%s/s%d", sc.video, sc.index)

	b.stepOn(b.p.FrameExtractor.Display, b.p.FrameExtractor.Impl, b.p.FrameExtractor.Config,
		sc.frames, b.extAlloc.SetIntensity, label, func() {
			b.stepOn(b.p.STT.Display, b.p.STT.Impl, b.p.STT.Config,
				sc.audioS, b.sttAlloc.SetIntensity, label, func() {
					b.stepOn(b.p.ObjectDetector.Display, b.p.ObjectDetector.Impl, b.p.ObjectDetector.Config,
						sc.frames, b.detAlloc.SetIntensity, label, func() {
							b.summarize(sc, label, i)
						})
				})
		})
}

func (b *baselineRun) summarize(sc scene, label string, i int) {
	span := b.tracer.Start(b.p.Summarizer.Display, label, b.r.se.Now().Seconds())
	b.textEngine.Submit(&llmsim.Request{
		ID:           "sum-" + label,
		PromptTokens: planner.SummarizePromptTokens,
		OutputTokens: planner.SummarizeOutputTokens,
		OnComplete: func(*llmsim.Request) {
			b.tracer.End(span, b.r.se.Now().Seconds())
			b.rep.TasksCompleted++
			b.embed(sc, label, i)
		},
	})
}

func (b *baselineRun) embed(sc scene, label string, i int) {
	span := b.tracer.Start(b.p.Embedder.Display, label, b.r.se.Now().Seconds())
	b.embedEngine.Submit(&llmsim.Request{
		ID:           "emb-" + label,
		PromptTokens: planner.EmbedTokens,
		OutputTokens: 0,
		OnComplete: func(*llmsim.Request) {
			b.tracer.End(span, b.r.se.Now().Seconds())
			b.rep.TasksCompleted++
			text := fmt.Sprintf("summary of %s scene %d", sc.video, sc.index)
			if err := b.r.db.Insert("scenes", vectordb.Doc{
				ID:     label,
				Vector: vectordb.Embed(text, b.r.db.Dim()),
				Text:   text,
			}); err != nil {
				panic(err)
			}
			b.processScene(i + 1)
		},
	})
}

func (b *baselineRun) finish() {
	b.release()
	b.rep.MakespanS = b.r.se.Now().Seconds()
	// Quality: the fixed bindings' implementation qualities, work-weighted
	// equally per stage.
	var q float64
	for _, impl := range []string{
		b.p.FrameExtractor.Impl, b.p.STT.Impl, b.p.ObjectDetector.Impl,
		b.p.Summarizer.Impl, b.p.Embedder.Impl,
	} {
		im, _ := b.r.lib.Get(impl)
		q += im.Quality
	}
	b.rep.Quality = q / 5
	// Baseline runs own a throwaway cluster that is never compacted, so the
	// window can't predate the watermark; a failure here is a programming
	// error, not an operational condition.
	if err := report.Finalize(b.rep, b.r.cl); err != nil {
		panic(err)
	}
}
